type t = { prng : Prng.t; base_us : float; cap_us : float }

(* Mix the node id into the seed with a large odd constant (a 62-bit
   xorshift multiplier) so sibling streams differ in every bit even for
   adjacent node ids. *)
let stream ~seed ~node ~base_us ~cap_us =
  if base_us <= 0.0 then invalid_arg "Backoff.stream: base must be positive";
  if cap_us < base_us then invalid_arg "Backoff.stream: cap must be >= base";
  let mixed = seed lxor ((node + 1) * 0x2545F4914F6CDD1D) in
  { prng = Prng.create ~seed:mixed; base_us; cap_us }

let next t ~prev_us =
  let prev_us = Float.max t.base_us prev_us in
  let span = Float.max 0.0 ((prev_us *. 3.0) -. t.base_us) in
  let draw = if span > 0.0 then Prng.float t.prng span else 0.0 in
  Float.min t.cap_us (t.base_us +. draw)

let first t = t.base_us
let cap t = t.cap_us
