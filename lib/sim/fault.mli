(** Link-level fault model for the simulated interconnect.

    The paper's simulation assumes a perfectly reliable switched network;
    this module parameterises {!Network} with the failure modes a real
    cluster exhibits, so the protocol layers above can be hardened and
    chaos-tested:

    - message {e drops} (lossy link),
    - message {e duplicates} (retransmitting transport, routing flaps),
    - {e delay jitter} (queueing variance) — bounded extra latency that
      never violates the per-channel FIFO guarantee,
    - scheduled per-node {e pause} windows (GC stall, overloaded node:
      deliveries addressed to the node are deferred to the window's end),
    - scheduled per-node {e crash} windows (fail-stop crash-and-restart:
      deliveries addressed to the node during the window are lost, and the
      runtime layer wipes the node's volatile state on entry — in-flight
      families abort, caches are invalidated, unacked transport state is
      discarded — then restarts it with a fresh incarnation number at the
      window's end; see the "Failure model & recovery" section of
      DESIGN.md),
    - scheduled {e link windows}: network {e partitions} (messages crossing
      the split are lost, both directions), asymmetric {e one-way cuts}
      (messages on one directed link are lost), and {e slow links} (gray
      failure: messages on one directed link incur a fixed extra delay but
      are delivered). Link windows compose with the node windows and the
      probabilistic faults; delivery stays FIFO per channel, so a healed
      link resumes in order.

    All randomness is drawn from a dedicated {!Prng} stream seeded from
    [config.seed], independent of the workload streams, so any run is
    exactly reproducible from its seeds. Link windows draw no randomness
    at all. Byzantine behaviour (corruption, lying nodes) is out of
    scope. *)

type window_kind =
  | Pause  (** deliveries are deferred until the window closes *)
  | Crash
      (** deliveries are dropped while the window is open and the node's
          volatile state is lost (see the module preamble) *)

type window = {
  w_node : int;  (** affected destination node *)
  w_kind : window_kind;
  w_from_us : float;
  w_until_us : float;  (** half-open window [w_from_us, w_until_us) *)
}

(** Which traffic a link window affects. *)
type link_kind =
  | Partition of int list
      (** node-set split: a message is lost iff exactly one endpoint is in
          the listed group (traffic within the group, and within its
          complement, is unaffected) *)
  | One_way of { cut_src : int; cut_dst : int }
      (** asymmetric cut: messages from [cut_src] to [cut_dst] are lost;
          the reverse direction is unaffected *)
  | Slow of { slow_src : int; slow_dst : int; extra_us : float }
      (** gray failure: messages from [slow_src] to [slow_dst] incur
          [extra_us] additional latency but are delivered (FIFO kept) *)

type link_window = {
  lw_kind : link_kind;
  lw_from_us : float;
  lw_until_us : float;  (** half-open window [lw_from_us, lw_until_us) *)
}

type config = {
  seed : int;  (** seed of the fault PRNG stream *)
  drop_probability : float;  (** chance a remote message is lost, in [0,1] *)
  duplicate_probability : float;
      (** chance a remote message is delivered twice, in [0,1] *)
  delay_jitter_us : float;
      (** uniform extra latency in [0, delay_jitter_us) per message *)
  windows : window list;  (** scheduled node pause / crash-restart windows *)
  link_windows : link_window list;
      (** scheduled partition / one-way-cut / slow-link windows *)
}

val none : config
(** All probabilities zero, no windows: {!is_active} is [false]. *)

val is_active : config -> bool
(** Whether the config can perturb a run at all. An inactive config is
    guaranteed not to change simulation behaviour: no PRNG draws, no
    schedule changes, byte-for-byte identical output. *)

val validate : config -> (unit, string) result
(** Probabilities in [0,1], non-negative jitter, well-formed windows
    (non-negative node and times, [w_until_us >= w_from_us]) and link
    windows (non-empty partition groups, distinct cut/slow endpoints,
    non-negative extra delay). *)

val crash_windows : config -> window list
(** The [Crash]-kind windows, in configuration order. *)

val has_crash_windows : config -> bool
(** Whether any [Crash] window is configured — the runtime arms its
    heartbeat/failure-detection machinery only in that case, keeping
    crash-free runs byte-identical. *)

val has_link_windows : config -> bool
(** Whether any link window is configured. Like {!has_crash_windows}, this
    arms the runtime's membership machinery (reliable transport, quorum
    failure detection), since a partition makes messages loseable. *)

(** What the injector did to a message; reported through the network's
    [on_fault] hook and tallied in {!stats}. *)
type event =
  | Drop  (** lost on the link *)
  | Duplicate  (** a second copy was scheduled *)
  | Crash_drop  (** destination was crashed at arrival time *)
  | Pause_defer  (** delivery deferred past a pause window *)
  | Partition_drop  (** lost crossing a partition boundary *)
  | Link_cut_drop  (** lost on a one-way link cut *)
  | Slow_defer  (** delayed by a slow-link (gray failure) window *)

val event_to_string : event -> string

type stats = {
  mutable drops : int;
  mutable duplicates : int;
  mutable crash_drops : int;
  mutable pause_defers : int;
  mutable partition_drops : int;
  mutable link_cut_drops : int;
  mutable slow_defers : int;
}

val zero_stats : unit -> stats
val count : stats -> event -> unit
val total_faults : stats -> int

val pp_config : Format.formatter -> config -> unit
