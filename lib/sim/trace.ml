type event = { time : float; category : string; detail : string }

type t = {
  capacity : int;
  ring : event option array;
  mutable next : int;  (* slot for the next write *)
  mutable total : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; next = 0; total = 0 }

let record t ~time ~category ~detail =
  t.ring.(t.next) <- Some { time; category; detail };
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let recordf t ~time ~category fmt =
  Format.kasprintf (fun detail -> record t ~time ~category ~detail) fmt

let length t = min t.total t.capacity

let dropped t = max 0 (t.total - t.capacity)

let total t = t.total

let events t =
  let n = length t in
  let start = if t.total <= t.capacity then 0 else t.next in
  List.init n (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let latest t n =
  let all = events t in
  let len = List.length all in
  if n >= len then all else List.filteri (fun i _ -> i >= len - n) all

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.total <- 0

let categories t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt tbl e.category) in
      Hashtbl.replace tbl e.category (cur + 1))
    (events t);
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_event fmt e = Format.fprintf fmt "[%10.1fus] %s: %s" e.time e.category e.detail
