type 'a entry = { time : float; data : 'a }

type 'a t = {
  capacity : int;
  ring : 'a entry option array;
  mutable next : int;  (* slot for the next write *)
  mutable total : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; next = 0; total = 0 }

let record t ~time data =
  t.ring.(t.next) <- Some { time; data };
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let length t = min t.total t.capacity

let dropped t = max 0 (t.total - t.capacity)

let total t = t.total

let events t =
  let n = length t in
  let start = if t.total <= t.capacity then 0 else t.next in
  List.init n (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let latest t n =
  let all = events t in
  let len = List.length all in
  if n >= len then all else List.filteri (fun i _ -> i >= len - n) all

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.total <- 0

let counts t ~label =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let l = label e.data in
      let cur = Option.value ~default:0 (Hashtbl.find_opt tbl l) in
      Hashtbl.replace tbl l (cur + 1))
    (events t);
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_entry pp_data fmt e = Format.fprintf fmt "[%10.1fus] %a" e.time pp_data e.data
