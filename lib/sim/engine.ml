type event = { time : float; seq : int; run : unit -> unit }

type t = {
  mutable now : float;
  mutable seq : int;
  queue : event Heap.t;
  mutable fibers : int;
  mutable suspended : (string * float) list;
      (* names and suspension times of currently blocked fibers, for the
         stall diagnostic only *)
}

exception Stalled of string

let compare_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  { now = 0.0; seq = 0; queue = Heap.create ~cmp:compare_event; fibers = 0; suspended = [] }

let now t = t.now

let schedule t ~delay run =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  t.seq <- t.seq + 1;
  Heap.push t.queue { time = t.now +. delay; seq = t.seq; run }

(* Effects performed by fibers. [Suspend register] hands the handler a
   resume-callback registration function: the fiber is continued when the
   callback is invoked. *)
type _ Effect.t +=
  | Wait : float -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let wait d = Effect.perform (Wait d)

let fiber_count t = t.fibers

let spawn t ?(name = "fiber") f =
  t.fibers <- t.fibers + 1;
  let body () =
    let open Effect.Deep in
    match_with f ()
      {
        retc = (fun () -> t.fibers <- t.fibers - 1);
        exnc = (fun e -> raise e);
        effc =
          (fun (type b) (eff : b Effect.t) ->
            match eff with
            | Wait d ->
                Some
                  (fun (k : (b, _) continuation) ->
                    schedule t ~delay:(max 0.0 d) (fun () -> continue k ()))
            | Suspend register ->
                Some
                  (fun (k : (b, _) continuation) ->
                    let fired = ref false in
                    let mark = (name, t.now) in
                    t.suspended <- mark :: t.suspended;
                    register (fun () ->
                        if !fired then invalid_arg "Engine: fiber resumed twice";
                        fired := true;
                        t.suspended <-
                          (let rec remove = function
                             | [] -> []
                             | m :: rest -> if m == mark then rest else m :: remove rest
                           in
                           remove t.suspended);
                        schedule t ~delay:0.0 (fun () -> continue k ())))
            | _ -> None);
      }
  in
  schedule t ~delay:0.0 body

let run t =
  let rec loop () =
    match Heap.pop t.queue with
    | None -> ()
    | Some ev ->
        t.now <- ev.time;
        ev.run ();
        loop ()
  in
  loop ();
  if t.fibers > 0 && t.suspended <> [] then begin
    let describe (name, since) = Printf.sprintf "%s (suspended at %.1fus)" name since in
    raise
      (Stalled
         (Printf.sprintf "simulation stalled with %d blocked fiber(s): %s" t.fibers
            (String.concat ", " (List.map describe t.suspended))))
  end

let run_for t d =
  let deadline = t.now +. d in
  let rec loop () =
    match Heap.peek t.queue with
    | Some ev when ev.time <= deadline -> (
        match Heap.pop t.queue with
        | Some ev ->
            t.now <- ev.time;
            ev.run ();
            loop ()
        | None -> ())
    | _ -> t.now <- deadline
  in
  loop ()

module Ivar = struct
  type 'a state = Empty of (unit -> unit) list | Full of 'a
  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty [] }

  let is_filled iv = match iv.state with Full _ -> true | Empty _ -> false

  let peek iv = match iv.state with Full v -> Some v | Empty _ -> None

  let fill iv v =
    match iv.state with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty waiters ->
        iv.state <- Full v;
        (* Resume callbacks schedule the fiber continuations themselves. *)
        List.iter (fun wake -> wake ()) (List.rev waiters)

  let read iv =
    match iv.state with
    | Full v -> v
    | Empty _ ->
        Effect.perform
          (Suspend
             (fun wake ->
               match iv.state with
               | Full _ -> wake ()
               | Empty waiters -> iv.state <- Empty (wake :: waiters)));
        (match iv.state with
        | Full v -> v
        | Empty _ -> assert false)
end

module Semaphore = struct
  type t = { permits : int; mutable free : int; mutable waiters : (unit -> unit) list }

  let create ~permits =
    if permits <= 0 then invalid_arg "Semaphore.create: permits must be positive";
    { permits; free = permits; waiters = [] }

  let acquire s =
    if s.free > 0 then s.free <- s.free - 1
    else Effect.perform (Suspend (fun wake -> s.waiters <- s.waiters @ [ wake ]))
  (* The releaser hands its permit directly to the woken waiter, so [free]
     is not incremented on that path. *)

  let release s =
    match s.waiters with
    | wake :: rest ->
        s.waiters <- rest;
        wake ()
    | [] ->
        if s.free >= s.permits then invalid_arg "Semaphore.release: too many releases";
        s.free <- s.free + 1

  let with_permit s f =
    acquire s;
    match f () with
    | v ->
        release s;
        v
    | exception e ->
        release s;
        raise e

  let available s = s.free
  let waiting s = List.length s.waiters
end

module Mailbox = struct
  type 'a t = { items : 'a Queue.t; mutable takers : (unit -> unit) list }

  let create () = { items = Queue.create (); takers = [] }

  let put mb v =
    Queue.push v mb.items;
    match mb.takers with
    | [] -> ()
    | wake :: rest ->
        mb.takers <- rest;
        wake ()

  let rec take mb =
    if Queue.is_empty mb.items then begin
      Effect.perform (Suspend (fun wake -> mb.takers <- mb.takers @ [ wake ]));
      take mb
    end
    else Queue.pop mb.items

  let length mb = Queue.length mb.items
end
