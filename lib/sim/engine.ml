(* Event storage is a flat, preallocated pool: three parallel arrays
   (absolute time, schedule sequence, callback) indexed by integer slot,
   a stack of free slots, and a binary min-heap of slot indices ordered
   by (time, seq). Compared to a heap of {time; seq; run} records this
   removes the per-event record and option allocations and the
   comparison-closure indirection: ordering is two inlined array reads
   and a float compare. A slot is occupied exactly while its event is
   pending, so the pool, the heap array and the free stack share one
   capacity and grow together (never shrink).

   Determinism is carried entirely by the (time, seq) order — seq is
   unique and monotonic, so any correct min-heap pops the same sequence
   the old record heap did, and same-instant events still fire in
   scheduling order. *)

type t = {
  mutable now : float;
  mutable seq : int;
  mutable ev_time : float array; (* slot -> absolute due time *)
  mutable ev_seq : int array; (* slot -> scheduling sequence number *)
  mutable ev_run : (unit -> unit) array; (* slot -> callback; [nop] when free *)
  mutable heap : int array; (* slot indices, min-heap by (time, seq) *)
  mutable size : int; (* pending events = occupied slots *)
  mutable free : int array; (* stack of free slots *)
  mutable free_top : int;
  mutable fibers : int;
  susp : mark; (* sentinel of the suspended-mark ring *)
  (* profiling counters, surfaced via [stats] *)
  mutable events_dispatched : int;
  mutable events_scheduled : int;
  mutable max_queue_depth : int;
}

(* Suspended-fiber diagnostics: a doubly-linked ring through a sentinel,
   so registering and removing a mark are O(1) (the old list was scanned
   linearly on every resume). [m_fired] doubles as the double-resume
   guard. *)
and mark = {
  mutable m_name : string;
  mutable m_since : float;
  mutable m_fired : bool;
  mutable m_prev : mark;
  mutable m_next : mark;
}

exception Stalled of string

let nop () = ()

let make_sentinel () =
  let rec s = { m_name = ""; m_since = 0.0; m_fired = false; m_prev = s; m_next = s } in
  s

let create () =
  {
    now = 0.0;
    seq = 0;
    ev_time = [||];
    ev_seq = [||];
    ev_run = [||];
    heap = [||];
    size = 0;
    free = [||];
    free_top = 0;
    fibers = 0;
    susp = make_sentinel ();
    events_dispatched = 0;
    events_scheduled = 0;
    max_queue_depth = 0;
  }

let now t = t.now

type stats = {
  dispatched : int;
  scheduled : int;
  pending : int;
  max_queue : int;
}

let stats t =
  {
    dispatched = t.events_dispatched;
    scheduled = t.events_scheduled;
    pending = t.size;
    max_queue = t.max_queue_depth;
  }

(* (time, seq) order over slots. seq is unique, so this is a strict
   total order and the equal-time case never needs a third key. *)
let[@inline] ev_lt t a b =
  let ta = Array.unsafe_get t.ev_time a and tb = Array.unsafe_get t.ev_time b in
  ta < tb || (ta = tb && Array.unsafe_get t.ev_seq a < Array.unsafe_get t.ev_seq b)

let grow t =
  let cap = Array.length t.ev_time in
  let ncap = if cap = 0 then 256 else cap * 2 in
  let ev_time = Array.make ncap 0.0 in
  let ev_seq = Array.make ncap 0 in
  let ev_run = Array.make ncap nop in
  let heap = Array.make ncap 0 in
  Array.blit t.ev_time 0 ev_time 0 cap;
  Array.blit t.ev_seq 0 ev_seq 0 cap;
  Array.blit t.ev_run 0 ev_run 0 cap;
  Array.blit t.heap 0 heap 0 t.size;
  (* grow only runs with the free stack empty, so the new stack holds
     exactly the newly minted slots *)
  let free = Array.make ncap 0 in
  for i = cap to ncap - 1 do
    free.(i - cap) <- i
  done;
  t.ev_time <- ev_time;
  t.ev_seq <- ev_seq;
  t.ev_run <- ev_run;
  t.heap <- heap;
  t.free <- free;
  t.free_top <- ncap - cap

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    let si = t.heap.(i) and sp = t.heap.(parent) in
    if ev_lt t si sp then begin
      t.heap.(i) <- sp;
      t.heap.(parent) <- si;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && ev_lt t t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && ev_lt t t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let schedule t ~delay run =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  if t.free_top = 0 then grow t;
  t.free_top <- t.free_top - 1;
  let slot = t.free.(t.free_top) in
  t.seq <- t.seq + 1;
  t.ev_time.(slot) <- t.now +. delay;
  t.ev_seq.(slot) <- t.seq;
  t.ev_run.(slot) <- run;
  let i = t.size in
  t.size <- i + 1;
  if t.size > t.max_queue_depth then t.max_queue_depth <- t.size;
  t.heap.(i) <- slot;
  sift_up t i;
  t.events_scheduled <- t.events_scheduled + 1

(* The single peek-and-pop both run loops share: one root comparison
   decides whether the minimum event is due. On a hit the clock advances
   to the event time, the slot is recycled, and the callback is
   returned. *)
let pop_if t ~before =
  if t.size = 0 then None
  else begin
    let slot = t.heap.(0) in
    let time = t.ev_time.(slot) in
    if time > before then None
    else begin
      t.size <- t.size - 1;
      if t.size > 0 then begin
        t.heap.(0) <- t.heap.(t.size);
        sift_down t 0
      end;
      let run = t.ev_run.(slot) in
      t.ev_run.(slot) <- nop;
      t.free.(t.free_top) <- slot;
      t.free_top <- t.free_top + 1;
      t.now <- time;
      t.events_dispatched <- t.events_dispatched + 1;
      Some run
    end
  end

(* Effects performed by fibers. [Suspend register] hands the handler a
   resume-callback registration function: the fiber is continued when the
   callback is invoked. *)
type _ Effect.t +=
  | Wait : float -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let wait d = Effect.perform (Wait d)
let suspend register = Effect.perform (Suspend register)

let fiber_count t = t.fibers

let spawn t ?(name = "fiber") f =
  t.fibers <- t.fibers + 1;
  let body () =
    let open Effect.Deep in
    match_with f ()
      {
        retc = (fun () -> t.fibers <- t.fibers - 1);
        exnc = (fun e -> raise e);
        effc =
          (fun (type b) (eff : b Effect.t) ->
            match eff with
            | Wait d ->
                Some
                  (fun (k : (b, _) continuation) ->
                    schedule t ~delay:(max 0.0 d) (fun () -> continue k ()))
            | Suspend register ->
                Some
                  (fun (k : (b, _) continuation) ->
                    let s = t.susp in
                    let mark =
                      { m_name = name; m_since = t.now; m_fired = false;
                        m_prev = s; m_next = s.m_next }
                    in
                    s.m_next.m_prev <- mark;
                    s.m_next <- mark;
                    register (fun () ->
                        if mark.m_fired then invalid_arg "Engine: fiber resumed twice";
                        mark.m_fired <- true;
                        mark.m_prev.m_next <- mark.m_next;
                        mark.m_next.m_prev <- mark.m_prev;
                        schedule t ~delay:0.0 (fun () -> continue k ())))
            | _ -> None);
      }
  in
  schedule t ~delay:0.0 body

let suspended_marks t =
  let rec collect m acc = if m == t.susp then acc else collect m.m_next ((m.m_name, m.m_since) :: acc) in
  List.rev (collect t.susp.m_next [])

let run t =
  let rec loop () =
    match pop_if t ~before:infinity with
    | Some run ->
        run ();
        loop ()
    | None -> ()
  in
  loop ();
  let suspended = suspended_marks t in
  if t.fibers > 0 && suspended <> [] then begin
    let describe (name, since) = Printf.sprintf "%s (suspended at %.1fus)" name since in
    raise
      (Stalled
         (Printf.sprintf "simulation stalled with %d blocked fiber(s): %s" t.fibers
            (String.concat ", " (List.map describe suspended))))
  end

let run_for t d =
  let deadline = t.now +. d in
  let rec loop () =
    match pop_if t ~before:deadline with
    | Some run ->
        run ();
        loop ()
    | None -> t.now <- deadline
  in
  loop ()

module Ivar = struct
  type 'a state = Empty of (unit -> unit) list | Full of 'a
  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty [] }

  let is_filled iv = match iv.state with Full _ -> true | Empty _ -> false

  let peek iv = match iv.state with Full v -> Some v | Empty _ -> None

  let fill iv v =
    match iv.state with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty waiters ->
        iv.state <- Full v;
        (* Resume callbacks schedule the fiber continuations themselves. *)
        List.iter (fun wake -> wake ()) (List.rev waiters)

  let read iv =
    match iv.state with
    | Full v -> v
    | Empty _ ->
        Effect.perform
          (Suspend
             (fun wake ->
               match iv.state with
               | Full _ -> wake ()
               | Empty waiters -> iv.state <- Empty (wake :: waiters)));
        (match iv.state with
        | Full v -> v
        | Empty _ -> assert false)
end

module Semaphore = struct
  type t = { permits : int; mutable free : int; waiters : (unit -> unit) Queue.t }

  let create ~permits =
    if permits <= 0 then invalid_arg "Semaphore.create: permits must be positive";
    { permits; free = permits; waiters = Queue.create () }

  let acquire s =
    if s.free > 0 then s.free <- s.free - 1
    else Effect.perform (Suspend (fun wake -> Queue.push wake s.waiters))
  (* The releaser hands its permit directly to the woken waiter, so [free]
     is not incremented on that path. *)

  let release s =
    if Queue.is_empty s.waiters then begin
      if s.free >= s.permits then invalid_arg "Semaphore.release: too many releases";
      s.free <- s.free + 1
    end
    else (Queue.pop s.waiters) ()

  let with_permit s f =
    acquire s;
    match f () with
    | v ->
        release s;
        v
    | exception e ->
        release s;
        raise e

  let available s = s.free
  let waiting s = Queue.length s.waiters
end

module Mailbox = struct
  type 'a t = { items : 'a Queue.t; takers : (unit -> unit) Queue.t }

  let create () = { items = Queue.create (); takers = Queue.create () }

  let put mb v =
    Queue.push v mb.items;
    if not (Queue.is_empty mb.takers) then (Queue.pop mb.takers) ()

  let rec take mb =
    if Queue.is_empty mb.items then begin
      Effect.perform (Suspend (fun wake -> Queue.push wake mb.takers));
      take mb
    end
    else Queue.pop mb.items

  let length mb = Queue.length mb.items
end
