(** Per-node cache of object pages, in the page-version model.

    Contents are version numbers: a node holds page [p] of object [o] at some
    version [v]; it is up to date iff [v] equals the newest version recorded
    in the GDO page map. A node that has never seen a page reports version
    [absent] (-1). *)

type t

val absent : int
(** Version reported for pages never cached here (-1); any real version,
    including the initial 0, is greater. *)

val create : node:int -> t
(** Empty store for the given node; every page starts {!absent}. *)

val node : t -> int
(** The node this store belongs to (as passed to {!create}). *)

val version : t -> Objmodel.Oid.t -> page:int -> int
(** Cached version, or {!absent}. *)

val receive : t -> Objmodel.Oid.t -> page:int -> version:int -> unit
(** Install a page copy obtained from another node. Keeps the newest: an
    older incoming copy never overwrites a newer cached one. *)

val write : t -> Objmodel.Oid.t -> page:int -> new_version:int -> int
(** Local update: set the page to [new_version], returning the previous
    cached version (possibly {!absent}) for the undo log. *)

val restore : t -> Objmodel.Oid.t -> page:int -> version:int -> unit
(** Undo: put the page back to exactly [version] (or remove it when
    [version = absent]). *)

val is_current : t -> Objmodel.Oid.t -> page:int -> newest:int -> bool
(** Whether the cached version equals [newest] (the GDO page-map entry). *)

val cached_pages : t -> Objmodel.Oid.t -> (int * int) list
(** (page, version) pairs cached for the object, ascending by page. *)

val cached_objects : t -> Objmodel.Oid.t list
(** Objects with at least one cached page, ascending. *)

val dump : t -> string
(** Human-readable listing of every cached page: one line per object,
    ascending by oid with pages ascending within it — deterministic across
    hash seeds (never raw hash-table order), so two equivalent runs yield
    byte-identical dumps. *)
