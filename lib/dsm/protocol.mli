(** The consistency-protocol suite of the paper's §5.

    All four protocols are entry-consistency style (updates move at lock
    acquisition), differing only in {e which} pages move:

    - {b COTEC} (Conservative OTEC): all of the object's pages are brought to
      the acquiring site — the baseline, with no dirty-page knowledge.
    - {b OTEC}: only pages whose up-to-date version is not already cached at
      the acquiring site.
    - {b LOTEC}: the OTEC set intersected with the pages the acquiring
      method is (conservatively) predicted to access; anything else is
      fetched on demand if a later access in the family needs it.
    - {b RC_nested}: the Release-Consistency variant from the paper's
      future-work list — updates are pushed eagerly to every caching site at
      root release, so acquisition only fetches what is still stale (cold
      caches). *)

type t = Cotec | Otec | Lotec | Rc_nested

val all : t list
(** Every protocol, in declaration order (the order experiment tables use). *)

val to_string : t -> string
(** Lower-case CLI spelling, e.g. ["rc-nested"]; inverse of {!of_string}. *)

val of_string : string -> (t, string) result
(** Parse a CLI spelling, case-insensitive; [Error] names the valid set. *)

val pp : Format.formatter -> t -> unit
(** Upper-case display name as the paper writes it, e.g. ["LOTEC"]. *)

val equal : t -> t -> bool

val is_eager_push : t -> bool
(** True only for [Rc_nested]: the runtime pushes dirty pages to the copyset
    at root release. *)

val transfer_set :
  t ->
  page_count:int ->
  page_nodes:int array ->
  page_versions:int array ->
  local_version:(int -> int) ->
  node:int ->
  predicted:int list ->
  int list
(** [transfer_set p ...] is the ascending list of pages the acquiring site
    [node] must fetch at lock-acquisition time, given the grant's page map
    ([page_nodes], [page_versions]), the site's cached versions
    ([local_version page]), and the acquiring method's conservative predicted
    access pages [predicted].

    Pages whose newest copy already resides at [node] are never in the set
    (there is nowhere to fetch them from). *)

val demand_fetch_allowed : t -> bool
(** Whether the runtime may lazily fetch pages missed at acquisition time.
    True for LOTEC (by design) and RC_nested (cold pages outside the initial
    fetch); for COTEC/OTEC a demand fetch would indicate a protocol bug and
    the runtime treats it as an invariant violation. *)
