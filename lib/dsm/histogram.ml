(* HdrHistogram-style bucketing: exact unit buckets below [linear_limit]
   (2^sub_bits), then 2^(sub_bits-1) linear sub-buckets per power-of-two
   range, so any value v is represented with error < v / 2^(sub_bits-1). *)

let sub_bits = 6
let linear_limit = 1 lsl sub_bits (* 64 *)
let half = 1 lsl (sub_bits - 1) (* 32 sub-buckets per magnitude *)

(* OCaml ints are 63-bit: magnitudes sub_bits .. 62 after the linear region. *)
let bucket_count = linear_limit + ((63 - sub_bits) * half)

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { buckets = Array.make bucket_count 0; count = 0; sum = 0.0; min_v = infinity; max_v = 0.0 }

let index_of n =
  if n < linear_limit then n
  else begin
    (* k = floor(log2 n) >= sub_bits *)
    let k = ref sub_bits in
    while n lsr (!k + 1) > 0 do
      incr k
    done;
    let k = !k in
    let sub = (n - (1 lsl k)) lsr (k - sub_bits + 1) in
    linear_limit + ((k - sub_bits) * half) + sub
  end

(* Representative value of a bucket: exact in the linear region, midpoint of
   the sub-bucket's range above it. *)
let value_of i =
  if i < linear_limit then float_of_int i
  else begin
    let k = sub_bits + ((i - linear_limit) / half) in
    let sub = (i - linear_limit) mod half in
    let width = 1 lsl (k - sub_bits + 1) in
    let lower = (1 lsl k) + (sub * width) in
    float_of_int lower +. (float_of_int (width - 1) /. 2.0)
  end

(* Largest value representable in the bucketing (and in an OCaml int).
   [int_of_float] is unspecified above [max_int], so anything at or beyond
   this — including [infinity] — is clamped here first; the clamped value
   lands in the top occupied bucket and keeps min/max/mean finite. *)
let clamp_limit = float_of_int max_int

let record t v =
  let v = if Float.is_nan v || v < 0.0 then 0.0 else v in
  let v = if v >= clamp_limit then clamp_limit else v in
  let n = if v >= clamp_limit then max_int else int_of_float (Float.round v) in
  let i = index_of n in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let min_value t = if t.count = 0 then 0.0 else t.min_v
let max_value t = t.max_v
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p outside [0,100]";
  if t.count = 0 then 0.0
  else if p = 0.0 then min_value t
  else begin
    let rank = max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.count))) in
    let acc = ref 0 and result = ref (max_value t) and found = ref false in
    (try
       Array.iteri
         (fun i c ->
           if c > 0 then begin
             acc := !acc + c;
             if (not !found) && !acc >= rank then begin
               result := value_of i;
               found := true;
               raise Exit
             end
           end)
         t.buckets
     with Exit -> ());
    (* A bucket's representative is its midpoint, which can exceed the
       observed maximum (or undercut the minimum at low p); the true
       quantile is bounded by both, so clamp into [min_value, max_value]. *)
    Float.min (Float.max !result (min_value t)) (max_value t)
  end

let pp fmt t =
  if t.count = 0 then Format.pp_print_string fmt "(empty)"
  else
    Format.fprintf fmt "p50=%.1fus p90=%.1fus p99=%.1fus max=%.1fus (n=%d)"
      (percentile t 50.0) (percentile t 90.0) (percentile t 99.0) (max_value t) t.count
