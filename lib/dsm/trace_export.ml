open Objmodel
open Txn

(* ------------------------------------------------------------------ *)
(* Per-transaction timeline.                                           *)

let timeline ~family entries =
  let mine =
    List.filter
      (fun (e : Event.t Sim.Trace.entry) ->
        match Event.family e.Sim.Trace.data with
        | Some f -> Txn_id.equal f family
        | None -> false)
      entries
  in
  match mine with
  | [] -> Format.asprintf "no retained events for family %a" Txn_id.pp family
  | first :: _ ->
      let t0 = first.Sim.Trace.time in
      let buf = Buffer.create 256 in
      let fmt = Format.formatter_of_buffer buf in
      Format.fprintf fmt "family %a: %d event(s)@." Txn_id.pp family (List.length mine);
      List.iter
        (fun (e : Event.t Sim.Trace.entry) ->
          Format.fprintf fmt "[%10.1fus] (+%.1f) %a@." e.Sim.Trace.time
            (e.Sim.Trace.time -. t0) Event.pp e.Sim.Trace.data)
        mine;
      Format.pp_print_flush fmt ();
      Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON.                                            *)

let escape_json s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Span pairing: an opening event registers under a key; the matching close
   emits one complete ("X") slice on the opener's track. *)
type span_key = Lock_span of int * int | Recall_span of int | Root_span of int

let span_open ev =
  match (ev : Event.t) with
  | Lock_request { oid; family; _ } ->
      Some (Lock_span (Oid.to_int oid, Txn_id.to_int family))
  | Lease_recall { oid; _ } -> Some (Recall_span (Oid.to_int oid))
  | Root_begin { family; _ } -> Some (Root_span (Txn_id.to_int family))
  | _ -> None

let span_close ev =
  match (ev : Event.t) with
  | Lock_grant { oid; family; _ } | Lock_refused { oid; family; _ } ->
      Some (Lock_span (Oid.to_int oid, Txn_id.to_int family))
  | Lease_recall_cleared { oid; _ } | Lease_expired { oid; _ } ->
      Some (Recall_span (Oid.to_int oid))
  | Root_commit { family; _ } | Root_abort { family; _ } ->
      Some (Root_span (Txn_id.to_int family))
  | _ -> None

let span_name = function
  | Lock_span (oid, family) -> Printf.sprintf "acquire o%d (T%d)" oid family
  | Recall_span oid -> Printf.sprintf "recall o%d" oid
  | Root_span family -> Printf.sprintf "root T%d" family

let event_args ev =
  let fields = ref [] in
  let add k v = fields := (k, v) :: !fields in
  (match Event.oid ev with Some o -> add "oid" (Printf.sprintf "\"o%d\"" (Oid.to_int o)) | None -> ());
  (match Event.family ev with
  | Some f -> add "family" (Printf.sprintf "\"T%d\"" (Txn_id.to_int f))
  | None -> ());
  (match (ev : Event.t) with
  | Transfer { pages; bytes; _ } | Demand_fetch { pages; bytes; _ } ->
      add "pages" (string_of_int pages);
      add "bytes" (string_of_int bytes)
  | Retransmit { mid; attempt; _ } ->
      add "mid" (string_of_int mid);
      add "attempt" (string_of_int attempt)
  | Lease_granted { epoch; _ } | Lease_recall { epoch; _ } -> add "epoch" (string_of_int epoch)
  | Root_begin { attempt; _ } -> add "attempt" (string_of_int attempt)
  | _ -> ());
  match !fields with
  | [] -> "{}"
  | fs ->
      "{"
      ^ String.concat ", " (List.rev_map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v) fs)
      ^ "}"

let instant_json ~time ev =
  Printf.sprintf
    "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"i\", \"ts\": %.3f, \"pid\": 0, \"tid\": \
     %d, \"s\": \"t\", \"args\": %s}"
    (escape_json (Format.asprintf "%a" Event.pp ev))
    (escape_json (Event.category ev))
    time (Event.node ev) (event_args ev)

let slice_json ~ts ~dur ~tid ~name ~cat ~args =
  Printf.sprintf
    "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, \
     \"pid\": 0, \"tid\": %d, \"args\": %s}"
    (escape_json name) (escape_json cat) ts (max dur 0.0) tid args

let to_chrome ~node_count entries =
  let out = ref [] in
  let emit j = out := j :: !out in
  emit
    "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"args\": {\"name\": \
     \"lotec_sim\"}}";
  for n = 0 to node_count - 1 do
    emit
      (Printf.sprintf
         "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": %d, \"args\": \
          {\"name\": \"node %d\"}}"
         n n)
  done;
  let open_spans = Hashtbl.create 64 in
  List.iter
    (fun (e : Event.t Sim.Trace.entry) ->
      let ev = e.Sim.Trace.data and time = e.Sim.Trace.time in
      match span_close ev with
      | Some key when Hashtbl.mem open_spans key ->
          let t0, opener = Hashtbl.find open_spans key in
          Hashtbl.remove open_spans key;
          emit
            (slice_json ~ts:t0 ~dur:(time -. t0) ~tid:(Event.node opener)
               ~name:(span_name key) ~cat:(Event.category opener) ~args:(event_args ev))
      | _ -> (
          match span_open ev with
          | Some key ->
              (* A reopened key (e.g. a retried acquire whose first grant the
                 ring evicted) degrades the stale opener to an instant. *)
              (match Hashtbl.find_opt open_spans key with
              | Some (t0, opener) -> emit (instant_json ~time:t0 opener)
              | None -> ());
              Hashtbl.replace open_spans key (time, ev)
          | None -> emit (instant_json ~time ev)))
    entries;
  (* Opens never closed (in flight at run end, or the close was evicted) —
     flushed in (open time, key) order, not hash order, so the exported
     JSON is byte-identical across hash seeds. *)
  Hashtbl.fold (fun key (t0, opener) acc -> (key, t0, opener) :: acc) open_spans []
  |> List.sort (fun (k1, t1, _) (k2, t2, _) ->
         let c = Float.compare t1 t2 in
         if c <> 0 then c else compare k1 k2)
  |> List.iter (fun (_, t0, opener) -> emit (instant_json ~time:t0 opener));
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  let rec add = function
    | [] -> ()
    | [ j ] -> Buffer.add_string buf j
    | j :: rest ->
        Buffer.add_string buf j;
        Buffer.add_string buf ",\n";
        add rest
  in
  add (List.rev !out);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Minimal JSON well-formedness checker (no external deps).            *)

exception Bad of int * string

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (!pos, msg)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal w =
    String.iter (fun c -> expect c) w
  in
  let parse_string () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done;
              go ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let parse_number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let seen = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            seen := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if not !seen then fail "expected digit"
    in
    digits ();
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else
          let rec members () =
            skip_ws ();
            parse_string ();
            skip_ws ();
            expect ':';
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else
          let rec elements () =
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ()
    | Some '"' -> parse_string ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  try
    parse_value ();
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos) else Ok ()
  with Bad (p, msg) -> Error (Printf.sprintf "invalid JSON at offset %d: %s" p msg)
