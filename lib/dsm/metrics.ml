open Objmodel

type per_object = {
  mutable messages : int;
  mutable control_messages : int;
  mutable control_bytes : int;
  mutable data_messages : int;
  mutable data_bytes : int;
  mutable demand_fetches : int;
  mutable acquisitions : int;
}

type totals = {
  roots_committed : int;
  roots_aborted : int;
  deadlock_aborts : int;
  sub_aborts : int;
  retries : int;
  local_acquisitions : int;
  global_acquisitions : int;
  upgrades : int;
  eager_pushes : int;
  demand_fetches : int;
  drops : int;
  duplicates : int;
  retransmits : int;
  timeouts : int;
  gdo_releases : int;
  lease_grants : int;
  lease_hits : int;
  lease_recalls : int;
  lease_yields : int;
  lease_expiries : int;
  lease_aborts : int;
  give_ups : int;
  crash_aborts : int;
  nodes_declared_dead : int;
  families_reclaimed : int;
  failovers : int;
  quorum_votes : int;
  false_suspicions : int;
  node_readmissions : int;
  stale_epoch_rejects : int;
  fence_deferrals : int;
  node_parks : int;
  acks_piggybacked : int;
  acks_flushed : int;
  fetches_aggregated : int;
  releases_coalesced : int;
  heartbeats_suppressed : int;
  cache_hits : int;
  cache_misses : int;
  cache_fills : int;
  cache_invalidations : int;
  ships : int;
  ship_declines : int;
  ships_forced : int;
  ship_bytes_saved : int;
  escrow_reserves : int;
  escrow_local_commits : int;
  escrow_reconciles : int;
  escrow_recalls : int;
  escrow_yields : int;
  escrow_refusals : int;
  escrow_quota_units : int;
}

type t = {
  objects : per_object Oid.Table.t;
  mutable roots_committed : int;
  mutable roots_aborted : int;
  mutable deadlock_aborts : int;
  mutable sub_aborts : int;
  mutable retries : int;
  mutable local_acquisitions : int;
  mutable global_acquisitions : int;
  mutable upgrades : int;
  mutable eager_pushes : int;
  mutable drops : int;
  mutable duplicates : int;
  mutable retransmits : int;
  mutable timeouts : int;
  mutable gdo_releases : int;
  mutable lease_grants : int;
  mutable lease_hits : int;
  mutable lease_recalls : int;
  mutable lease_yields : int;
  mutable lease_expiries : int;
  mutable lease_aborts : int;
  mutable give_ups : int;
  mutable crash_aborts : int;
  mutable nodes_declared_dead : int;
  mutable families_reclaimed : int;
  mutable failovers : int;
  mutable quorum_votes : int;
  mutable false_suspicions : int;
  mutable node_readmissions : int;
  mutable stale_epoch_rejects : int;
  mutable fence_deferrals : int;
  mutable node_parks : int;
  mutable acks_piggybacked : int;
  mutable acks_flushed : int;
  mutable fetches_aggregated : int;
  mutable releases_coalesced : int;
  mutable heartbeats_suppressed : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_fills : int;
  mutable cache_invalidations : int;
  mutable ships : int;
  mutable ship_declines : int;
  mutable ships_forced : int;
  mutable ship_bytes_saved : int;
  mutable escrow_reserves : int;
  mutable escrow_local_commits : int;
  mutable escrow_reconciles : int;
  mutable escrow_recalls : int;
  mutable escrow_yields : int;
  mutable escrow_refusals : int;
  mutable escrow_quota_units : int;
  mutable completion_time_us : float;
  size_buckets : int array;  (* power-of-two message size histogram *)
  (* Per-message-type ledger, indexed by Wire.index; reconciles exactly with
     the per-object message/byte totals (every remote send is recorded in
     both, retransmitted copies included). *)
  wire_counts : int array;
  wire_bytes : int array;
  (* Riders: control payloads combined onto a carrier message of another
     type (piggybacked acks, traffic-suppressed heartbeats). A rider adds
     its bytes under its own type but zero messages — the carrier already
     counted one message and its total (base + rider) bytes went on the
     wire — so both reconciliation equalities keep holding exactly. *)
  wire_riders : int array;
  (* Latency histograms (HDR-style, see Histogram). *)
  acquire_latency : Histogram.t;
  commit_latency : Histogram.t;
  recall_latency : Histogram.t;
  recovery_latency : Histogram.t;
  declaration_latency : Histogram.t;
}

let bucket_bounds = [| 128; 256; 512; 1024; 2048; 4096; 8192; max_int |]

let untagged = Oid.of_int 0x3FFFFFFF

let create () =
  {
    objects = Oid.Table.create 128;
    roots_committed = 0;
    roots_aborted = 0;
    deadlock_aborts = 0;
    sub_aborts = 0;
    retries = 0;
    local_acquisitions = 0;
    global_acquisitions = 0;
    upgrades = 0;
    eager_pushes = 0;
    drops = 0;
    duplicates = 0;
    retransmits = 0;
    timeouts = 0;
    gdo_releases = 0;
    lease_grants = 0;
    lease_hits = 0;
    lease_recalls = 0;
    lease_yields = 0;
    lease_expiries = 0;
    lease_aborts = 0;
    give_ups = 0;
    crash_aborts = 0;
    nodes_declared_dead = 0;
    families_reclaimed = 0;
    failovers = 0;
    quorum_votes = 0;
    false_suspicions = 0;
    node_readmissions = 0;
    stale_epoch_rejects = 0;
    fence_deferrals = 0;
    node_parks = 0;
    acks_piggybacked = 0;
    acks_flushed = 0;
    fetches_aggregated = 0;
    releases_coalesced = 0;
    heartbeats_suppressed = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_fills = 0;
    cache_invalidations = 0;
    ships = 0;
    ship_declines = 0;
    ships_forced = 0;
    ship_bytes_saved = 0;
    escrow_reserves = 0;
    escrow_local_commits = 0;
    escrow_reconciles = 0;
    escrow_recalls = 0;
    escrow_yields = 0;
    escrow_refusals = 0;
    escrow_quota_units = 0;
    completion_time_us = 0.0;
    size_buckets = Array.make (Array.length bucket_bounds) 0;
    wire_counts = Array.make Wire.count 0;
    wire_bytes = Array.make Wire.count 0;
    wire_riders = Array.make Wire.count 0;
    acquire_latency = Histogram.create ();
    commit_latency = Histogram.create ();
    recall_latency = Histogram.create ();
    recovery_latency = Histogram.create ();
    declaration_latency = Histogram.create ();
  }

let zero () =
  {
    messages = 0;
    control_messages = 0;
    control_bytes = 0;
    data_messages = 0;
    data_bytes = 0;
    demand_fetches = 0;
    acquisitions = 0;
  }

let entry t oid =
  match Oid.Table.find_opt t.objects oid with
  | Some e -> e
  | None ->
      let e = zero () in
      Oid.Table.add t.objects oid e;
      e

let record_message t ~oid ~kind ~bytes =
  let rec bucket i = if bytes <= bucket_bounds.(i) then i else bucket (i + 1) in
  let b = bucket 0 in
  t.size_buckets.(b) <- t.size_buckets.(b) + 1;
  let e = entry t oid in
  e.messages <- e.messages + 1;
  match (kind : Sim.Network.kind) with
  | Control ->
      e.control_messages <- e.control_messages + 1;
      e.control_bytes <- e.control_bytes + bytes
  | Data ->
      e.data_messages <- e.data_messages + 1;
      e.data_bytes <- e.data_bytes + bytes

let record_wire t ~mtype ~bytes =
  let i = Wire.index mtype in
  t.wire_counts.(i) <- t.wire_counts.(i) + 1;
  t.wire_bytes.(i) <- t.wire_bytes.(i) + bytes

let record_rider t ~mtype ~count ~bytes =
  let i = Wire.index mtype in
  t.wire_riders.(i) <- t.wire_riders.(i) + count;
  t.wire_bytes.(i) <- t.wire_bytes.(i) + bytes

let wire_breakdown t =
  List.map (fun w -> (w, t.wire_counts.(Wire.index w), t.wire_bytes.(Wire.index w))) Wire.all

let wire_rider_breakdown t =
  List.map (fun w -> (w, t.wire_riders.(Wire.index w))) Wire.all

let wire_messages_total t = Array.fold_left ( + ) 0 t.wire_counts
let wire_bytes_total t = Array.fold_left ( + ) 0 t.wire_bytes
let wire_riders_total t = Array.fold_left ( + ) 0 t.wire_riders

let acquire_latency t = t.acquire_latency
let commit_latency t = t.commit_latency
let recall_latency t = t.recall_latency
let recovery_latency t = t.recovery_latency
let declaration_latency t = t.declaration_latency

let record_acquire_latency_us t v = Histogram.record t.acquire_latency v
let record_commit_latency_us t v = Histogram.record t.commit_latency v
let record_recall_latency_us t v = Histogram.record t.recall_latency v
let record_recovery_latency_us t v = Histogram.record t.recovery_latency v
let record_declaration_latency_us t v = Histogram.record t.declaration_latency v

let record_demand_fetch t ~oid =
  let e = entry t oid in
  e.demand_fetches <- e.demand_fetches + 1

let record_acquisition t ~oid =
  let e = entry t oid in
  e.acquisitions <- e.acquisitions + 1

let incr_roots_committed t = t.roots_committed <- t.roots_committed + 1
let incr_roots_aborted t = t.roots_aborted <- t.roots_aborted + 1
let incr_deadlock_aborts t = t.deadlock_aborts <- t.deadlock_aborts + 1
let incr_sub_aborts t = t.sub_aborts <- t.sub_aborts + 1
let incr_retries t = t.retries <- t.retries + 1
let incr_local_acquisitions t = t.local_acquisitions <- t.local_acquisitions + 1
let incr_global_acquisitions t = t.global_acquisitions <- t.global_acquisitions + 1
let incr_upgrades t = t.upgrades <- t.upgrades + 1
let incr_eager_pushes t = t.eager_pushes <- t.eager_pushes + 1
let incr_drops t = t.drops <- t.drops + 1
let incr_duplicates t = t.duplicates <- t.duplicates + 1
let incr_retransmits t = t.retransmits <- t.retransmits + 1
let incr_timeouts t = t.timeouts <- t.timeouts + 1
let incr_gdo_releases t = t.gdo_releases <- t.gdo_releases + 1
let incr_lease_grants t = t.lease_grants <- t.lease_grants + 1
let incr_lease_hits t = t.lease_hits <- t.lease_hits + 1
let add_lease_recalls t n = t.lease_recalls <- t.lease_recalls + n
let incr_lease_yields t = t.lease_yields <- t.lease_yields + 1
let incr_lease_expiries t = t.lease_expiries <- t.lease_expiries + 1
let incr_lease_aborts t = t.lease_aborts <- t.lease_aborts + 1
let incr_give_ups t = t.give_ups <- t.give_ups + 1
let incr_crash_aborts t = t.crash_aborts <- t.crash_aborts + 1
let incr_nodes_declared_dead t = t.nodes_declared_dead <- t.nodes_declared_dead + 1
let add_families_reclaimed t n = t.families_reclaimed <- t.families_reclaimed + n
let incr_failovers t = t.failovers <- t.failovers + 1
let incr_quorum_votes t = t.quorum_votes <- t.quorum_votes + 1
let incr_false_suspicions t = t.false_suspicions <- t.false_suspicions + 1
let incr_node_readmissions t = t.node_readmissions <- t.node_readmissions + 1
let incr_stale_epoch_rejects t = t.stale_epoch_rejects <- t.stale_epoch_rejects + 1
let incr_fence_deferrals t = t.fence_deferrals <- t.fence_deferrals + 1
let incr_node_parks t = t.node_parks <- t.node_parks + 1
let add_acks_piggybacked t n = t.acks_piggybacked <- t.acks_piggybacked + n
let add_acks_flushed t n = t.acks_flushed <- t.acks_flushed + n
let add_fetches_aggregated t n = t.fetches_aggregated <- t.fetches_aggregated + n
let add_releases_coalesced t n = t.releases_coalesced <- t.releases_coalesced + n
let incr_heartbeats_suppressed t = t.heartbeats_suppressed <- t.heartbeats_suppressed + 1
let incr_cache_hits t = t.cache_hits <- t.cache_hits + 1
let incr_cache_misses t = t.cache_misses <- t.cache_misses + 1
let incr_cache_fills t = t.cache_fills <- t.cache_fills + 1
let add_cache_invalidations t n = t.cache_invalidations <- t.cache_invalidations + n
let incr_ships t = t.ships <- t.ships + 1
let incr_ship_declines t = t.ship_declines <- t.ship_declines + 1
let incr_ships_forced t = t.ships_forced <- t.ships_forced + 1
let add_ship_bytes_saved t n = t.ship_bytes_saved <- t.ship_bytes_saved + n
let incr_escrow_reserves t = t.escrow_reserves <- t.escrow_reserves + 1
let incr_escrow_local_commits t = t.escrow_local_commits <- t.escrow_local_commits + 1
let incr_escrow_reconciles t = t.escrow_reconciles <- t.escrow_reconciles + 1
let incr_escrow_recalls t = t.escrow_recalls <- t.escrow_recalls + 1
let incr_escrow_yields t = t.escrow_yields <- t.escrow_yields + 1
let incr_escrow_refusals t = t.escrow_refusals <- t.escrow_refusals + 1
let add_escrow_quota_units t n = t.escrow_quota_units <- t.escrow_quota_units + n

(* Home-node lock-protocol operations: every request the GDO home processes
   (acquires, upgrades, release batches) plus lease recall round trips. The
   lease experiment's headline is the reduction of this count. *)
let home_lock_ops t =
  t.global_acquisitions + t.upgrades + t.gdo_releases + t.lease_recalls + t.lease_yields

let totals t =
  let demand =
    Oid.Table.fold (fun _ (e : per_object) acc -> acc + e.demand_fetches) t.objects 0
  in
  {
    roots_committed = t.roots_committed;
    roots_aborted = t.roots_aborted;
    deadlock_aborts = t.deadlock_aborts;
    sub_aborts = t.sub_aborts;
    retries = t.retries;
    local_acquisitions = t.local_acquisitions;
    global_acquisitions = t.global_acquisitions;
    upgrades = t.upgrades;
    eager_pushes = t.eager_pushes;
    demand_fetches = demand;
    drops = t.drops;
    duplicates = t.duplicates;
    retransmits = t.retransmits;
    timeouts = t.timeouts;
    gdo_releases = t.gdo_releases;
    lease_grants = t.lease_grants;
    lease_hits = t.lease_hits;
    lease_recalls = t.lease_recalls;
    lease_yields = t.lease_yields;
    lease_expiries = t.lease_expiries;
    lease_aborts = t.lease_aborts;
    give_ups = t.give_ups;
    crash_aborts = t.crash_aborts;
    nodes_declared_dead = t.nodes_declared_dead;
    families_reclaimed = t.families_reclaimed;
    failovers = t.failovers;
    quorum_votes = t.quorum_votes;
    false_suspicions = t.false_suspicions;
    node_readmissions = t.node_readmissions;
    stale_epoch_rejects = t.stale_epoch_rejects;
    fence_deferrals = t.fence_deferrals;
    node_parks = t.node_parks;
    acks_piggybacked = t.acks_piggybacked;
    acks_flushed = t.acks_flushed;
    fetches_aggregated = t.fetches_aggregated;
    releases_coalesced = t.releases_coalesced;
    heartbeats_suppressed = t.heartbeats_suppressed;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
    cache_fills = t.cache_fills;
    cache_invalidations = t.cache_invalidations;
    ships = t.ships;
    ship_declines = t.ship_declines;
    ships_forced = t.ships_forced;
    ship_bytes_saved = t.ship_bytes_saved;
    escrow_reserves = t.escrow_reserves;
    escrow_local_commits = t.escrow_local_commits;
    escrow_reconciles = t.escrow_reconciles;
    escrow_recalls = t.escrow_recalls;
    escrow_yields = t.escrow_yields;
    escrow_refusals = t.escrow_refusals;
    escrow_quota_units = t.escrow_quota_units;
  }

let per_object t oid =
  match Oid.Table.find_opt t.objects oid with Some e -> e | None -> zero ()

let objects t =
  Oid.Table.fold (fun oid _ acc -> oid :: acc) t.objects [] |> List.sort Oid.compare

let total_bytes t =
  Oid.Table.fold (fun _ e acc -> acc + e.control_bytes + e.data_bytes) t.objects 0

let total_data_bytes t = Oid.Table.fold (fun _ e acc -> acc + e.data_bytes) t.objects 0
let total_messages t = Oid.Table.fold (fun _ e acc -> acc + e.messages) t.objects 0

let time_of ~messages ~bytes ~(link : Sim.Network.link) =
  (float_of_int messages *. link.software_cost_us)
  +. (float_of_int bytes *. 8.0 /. link.bandwidth_bps *. 1e6)

let object_time_us t oid ~link =
  let e = per_object t oid in
  time_of ~messages:e.messages ~bytes:(e.control_bytes + e.data_bytes) ~link

let total_time_us t ~link =
  time_of ~messages:(total_messages t) ~bytes:(total_bytes t) ~link

let time_of_am ~control_messages ~data_messages ~bytes ~(link : Sim.Network.link)
    ~control_software_cost_us =
  (float_of_int control_messages *. control_software_cost_us)
  +. (float_of_int data_messages *. link.software_cost_us)
  +. (float_of_int bytes *. 8.0 /. link.bandwidth_bps *. 1e6)

let object_time_us_am t oid ~link ~control_software_cost_us =
  let e = per_object t oid in
  time_of_am ~control_messages:e.control_messages ~data_messages:e.data_messages
    ~bytes:(e.control_bytes + e.data_bytes) ~link ~control_software_cost_us

let total_time_us_am t ~link ~control_software_cost_us =
  Oid.Table.fold
    (fun _ e acc ->
      acc
      +. time_of_am ~control_messages:e.control_messages ~data_messages:e.data_messages
           ~bytes:(e.control_bytes + e.data_bytes) ~link ~control_software_cost_us)
    t.objects 0.0

let size_histogram t =
  Array.to_list (Array.mapi (fun i count -> (bucket_bounds.(i), count)) t.size_buckets)

let completion_time_us t = t.completion_time_us
let set_completion_time_us t v = t.completion_time_us <- v

let pp_summary fmt t =
  let tt = totals t in
  Format.fprintf fmt
    "@[<v>roots committed: %d (aborted %d, deadlock aborts %d, retries %d)@,\
     sub-transaction aborts: %d@,\
     lock acquisitions: %d local, %d global, %d upgrades@,\
     demand fetches: %d; eager pushes: %d@,"
    tt.roots_committed tt.roots_aborted tt.deadlock_aborts tt.retries tt.sub_aborts
    tt.local_acquisitions tt.global_acquisitions tt.upgrades tt.demand_fetches
    tt.eager_pushes;
  (* The fault line only appears when fault injection actually fired, so
     fault-free runs print byte-for-byte what they always did. *)
  if tt.drops + tt.duplicates + tt.retransmits + tt.timeouts > 0 then
    Format.fprintf fmt "faults: %d drops, %d duplicates, %d retransmits, %d timeouts@,"
      tt.drops tt.duplicates tt.retransmits tt.timeouts;
  (* Likewise the lease line: absent unless the lease subsystem did work. *)
  if tt.lease_grants + tt.lease_hits + tt.lease_recalls + tt.lease_aborts > 0 then
    Format.fprintf fmt
      "leases: %d grants, %d hits, %d recalls, %d yields, %d expiries, %d aborts@,"
      tt.lease_grants tt.lease_hits tt.lease_recalls tt.lease_yields tt.lease_expiries
      tt.lease_aborts;
  (* Crash-recovery line: absent unless crash windows actually fired. *)
  if
    tt.give_ups + tt.crash_aborts + tt.nodes_declared_dead + tt.families_reclaimed
    + tt.failovers
    > 0
  then
    Format.fprintf fmt
      "crashes: %d crash aborts, %d give-ups, %d declared dead, %d reclaimed, %d failovers@,"
      tt.crash_aborts tt.give_ups tt.nodes_declared_dead tt.families_reclaimed tt.failovers;
  (* Membership line: absent unless the quorum detector did work. *)
  if
    tt.quorum_votes + tt.false_suspicions + tt.node_readmissions + tt.stale_epoch_rejects
    + tt.fence_deferrals + tt.node_parks
    > 0
  then
    Format.fprintf fmt
      "membership: %d votes, %d false suspicions, %d readmissions, %d stale-epoch rejects, \
       %d fence deferrals, %d parks@,"
      tt.quorum_votes tt.false_suspicions tt.node_readmissions tt.stale_epoch_rejects
      tt.fence_deferrals tt.node_parks;
  (* Batching line: absent unless the combining layer actually combined. *)
  if
    tt.acks_piggybacked + tt.acks_flushed + tt.fetches_aggregated + tt.releases_coalesced
    + tt.heartbeats_suppressed
    > 0
  then
    Format.fprintf fmt
      "batching: %d acks piggybacked (%d flushed), %d fetch pages aggregated, %d releases \
       coalesced, %d heartbeats suppressed@,"
      tt.acks_piggybacked tt.acks_flushed tt.fetches_aggregated tt.releases_coalesced
      tt.heartbeats_suppressed;
  (* Method-cache line: absent unless the cache saw any traffic. *)
  if tt.cache_hits + tt.cache_misses + tt.cache_fills + tt.cache_invalidations > 0 then
    Format.fprintf fmt "method cache: %d hits, %d misses, %d fills, %d invalidations@,"
      tt.cache_hits tt.cache_misses tt.cache_fills tt.cache_invalidations;
  (* Shipping line: absent unless the shipping cost model ever ran. *)
  if tt.ships + tt.ship_declines + tt.ships_forced > 0 then
    Format.fprintf fmt
      "shipping: %d shipped (%d forced to pinned site), %d stayed, ~%d B predicted saved@,"
      tt.ships tt.ships_forced tt.ship_declines tt.ship_bytes_saved;
  (* Escrow line: absent unless the escrow subsystem did work. *)
  if
    tt.escrow_reserves + tt.escrow_local_commits + tt.escrow_refusals + tt.escrow_recalls
    + tt.escrow_quota_units
    > 0
  then
    Format.fprintf fmt
      "escrow: %d reserved, %d local commits, %d reconciles, %d recalls (%d yields), \
       %d refusals, %d quota units@,"
      tt.escrow_reserves tt.escrow_local_commits tt.escrow_reconciles tt.escrow_recalls
      tt.escrow_yields tt.escrow_refusals tt.escrow_quota_units;
  Format.fprintf fmt "traffic: %d messages, %d bytes (%d data)@,completion: %.1f us@]"
    (total_messages t) (total_bytes t) (total_data_bytes t) t.completion_time_us

let pp_wire_breakdown fmt t =
  (* The riders column only appears when something actually rode, so runs
     without batching print byte-for-byte what they always did. *)
  let riders = wire_riders_total t in
  if riders = 0 then begin
    Format.fprintf fmt "@[<v>%-16s %10s %12s %10s@," "message type" "messages" "bytes" "b/msg";
    List.iter
      (fun (w, msgs, bytes) ->
        if msgs > 0 then
          Format.fprintf fmt "%-16s %10d %12d %10.1f@," (Wire.to_string w) msgs bytes
            (float_of_int bytes /. float_of_int msgs))
      (wire_breakdown t);
    Format.fprintf fmt "%-16s %10d %12d@]" "total" (wire_messages_total t)
      (wire_bytes_total t)
  end
  else begin
    Format.fprintf fmt "@[<v>%-16s %10s %12s %10s %8s@," "message type" "messages" "bytes"
      "b/msg" "riders";
    List.iter
      (fun (w, msgs, bytes) ->
        let r = t.wire_riders.(Wire.index w) in
        if msgs > 0 || r > 0 then
          let per_msg = if msgs > 0 then float_of_int bytes /. float_of_int msgs else 0.0 in
          Format.fprintf fmt "%-16s %10d %12d %10.1f %8d@," (Wire.to_string w) msgs bytes
            per_msg r)
      (wire_breakdown t);
    Format.fprintf fmt "%-16s %10d %12d %10s %8d@]" "total" (wire_messages_total t)
      (wire_bytes_total t) "" riders
  end

let pp_latencies fmt t =
  Format.fprintf fmt "@[<v>acquire latency: %a@,commit latency:  %a" Histogram.pp
    t.acquire_latency Histogram.pp t.commit_latency;
  if Histogram.count t.recall_latency > 0 then
    Format.fprintf fmt "@,recall-to-clear: %a" Histogram.pp t.recall_latency;
  if Histogram.count t.recovery_latency > 0 then
    Format.fprintf fmt "@,crash recovery:  %a" Histogram.pp t.recovery_latency;
  if Histogram.count t.declaration_latency > 0 then
    Format.fprintf fmt "@,dead declaration:%a" Histogram.pp t.declaration_latency;
  Format.fprintf fmt "@]"
