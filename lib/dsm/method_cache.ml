open Objmodel

(* Transactional method-result cache (Pfeifer & Lockemann style) keyed by
   (oid, method, version vector of the predicted read set). The cache is a
   pure per-node data structure: the runtime decides when an entry may be
   consulted (only under a valid read lease) and when one may be installed
   (only when the recorded read versions match the leased grant), and the
   lease layer drives invalidation through its recall/eviction hooks. *)

let default_capacity = 256

type policy = Off | Lru of { capacity : int }

let off = Off

let policy_enabled = function Off -> false | Lru _ -> true

let validate_policy = function
  | Off -> Ok ()
  | Lru { capacity } ->
      if capacity > 0 then Ok () else Error "method cache capacity must be positive"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "off" | "none" -> Ok Off
  | "on" | "lru" -> Ok (Lru { capacity = default_capacity })
  | other -> (
      match String.index_opt other ':' with
      | Some i when String.sub other 0 i = "lru" -> (
          let arg = String.sub other (i + 1) (String.length other - i - 1) in
          match int_of_string_opt arg with
          | Some n when n > 0 -> Ok (Lru { capacity = n })
          | Some _ | None ->
              Error (Printf.sprintf "method cache capacity %S must be a positive integer" arg))
      | _ ->
          Error
            (Printf.sprintf "unknown method-cache policy %S (expected off|lru|lru:<capacity>)"
               other))

let policy_to_string = function Off -> "off" | Lru _ -> "lru"

let pp_policy fmt = function
  | Off -> Format.pp_print_string fmt "off"
  | Lru { capacity } -> Format.fprintf fmt "lru(%d)" capacity

(* ------------------------------------------------------------------ *)
(* Per-node cache.                                                     *)

type entry = {
  versions : int array;  (* version vector of the predicted read set, page order *)
  reads : (int * int) list;  (* the recorded read log: (page, version), ascending *)
  mutable last_used : int;  (* LRU clock tick of the latest find/install *)
}

(* Keys are (oid as int, method name): the version vector lives in the entry
   and is compared on lookup, so a stale entry is dropped lazily the moment
   the object's pages have advanced past it. *)
module Key = struct
  type t = int * string

  let equal (a1, b1) (a2, b2) = Int.equal a1 a2 && String.equal b1 b2
  let hash = Hashtbl.hash
end

module Tbl = Hashtbl.Make (Key)

type t = { policy : policy; entries : entry Tbl.t; mutable tick : int }

let create policy =
  let size = match policy with Off -> 1 | Lru { capacity } -> min capacity 1024 in
  { policy; entries = Tbl.create size; tick = 0 }

let enabled t = policy_enabled t.policy

let capacity t = match t.policy with Off -> 0 | Lru { capacity } -> capacity

let touch t e =
  t.tick <- t.tick + 1;
  e.last_used <- t.tick

let entry_count t = Tbl.length t.entries

let find t ~oid ~meth ~versions =
  if not (enabled t) then None
  else
    let key = (Oid.to_int oid, meth) in
    match Tbl.find_opt t.entries key with
    | None -> None
    | Some e ->
        if
          Array.length e.versions = Array.length versions
          && Array.for_all2 Int.equal e.versions versions
        then begin
          touch t e;
          Some e.reads
        end
        else begin
          (* Version advance: the cached result was computed against pages
             that have since been superseded — drop it. *)
          Tbl.remove t.entries key;
          None
        end

(* Evict the least-recently-used entry. Capacity is small (hundreds), so a
   linear scan on the rare insert-at-capacity keeps the structure trivial;
   ticks are unique, so the victim — hence the whole run — is deterministic. *)
let evict_lru t =
  let victim =
    Tbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best.last_used <= e.last_used -> acc
        | _ -> Some (key, e))
      t.entries None
  in
  match victim with None -> () | Some (key, _) -> Tbl.remove t.entries key

let install t ~oid ~meth ~versions ~reads =
  if not (enabled t) then false
  else
    let key = (Oid.to_int oid, meth) in
    match Tbl.find_opt t.entries key with
    | Some e
      when Array.length e.versions = Array.length versions
           && Array.for_all2 Int.equal e.versions versions ->
        (* Identical entry already cached (a race between two fills of the
           same execution): refresh recency, report no new fill. *)
        touch t e;
        false
    | Some _ ->
        (* Same key at different versions: replace in place. *)
        t.tick <- t.tick + 1;
        Tbl.replace t.entries key { versions = Array.copy versions; reads; last_used = t.tick };
        true
    | None ->
        if Tbl.length t.entries >= capacity t then evict_lru t;
        t.tick <- t.tick + 1;
        Tbl.add t.entries key { versions = Array.copy versions; reads; last_used = t.tick };
        true

let invalidate_object t oid =
  let o = Oid.to_int oid in
  let doomed =
    Tbl.fold (fun ((ko, _) as key) _ acc -> if ko = o then key :: acc else acc) t.entries []
  in
  List.iter (Tbl.remove t.entries) doomed;
  List.length doomed

let clear t =
  let n = Tbl.length t.entries in
  Tbl.reset t.entries;
  n
