(* Escrow commit policy: coordination-avoiding concurrency control for
   declared-commutative methods (Method_ir increment/decrement/insert). An
   escrowed object carries a bounded integer quantity; commuting
   sub-transactions reserve signed deltas against it instead of taking
   exclusive page locks, the directory admits a reservation whenever the
   worst case over all outstanding reservations keeps the quantity inside
   [lower_bound, upper_bound], and admitted reservations run concurrently.
   Each node may additionally hold a delegated quota — units of headroom it
   may commit locally with zero messages, lazily reconciled at the home and
   recalled with epoch fencing like a read lease. *)

type params = {
  lower_bound : int;
  upper_bound : int;
  initial : int;
  local_quota : int;
  reconcile_every : int;
}

type policy = Off | On of params

let default_params =
  {
    (* A bank-account shape: balances must stay non-negative, have no
       ceiling, and start with enough units that commuting withdrawals
       rarely hit the floor. *)
    lower_bound = 0;
    upper_bound = max_int;
    initial = 1_000;
    local_quota = 16;
    reconcile_every = 8;
  }

let off = Off

let policy_enabled = function Off -> false | On _ -> true

let validate_policy = function
  | Off -> Ok ()
  | On p ->
      let check cond msg = if cond then Ok () else Error msg in
      let ( let* ) = Result.bind in
      let* () = check (p.lower_bound <= p.upper_bound) "escrow lower_bound must be <= upper_bound" in
      let* () =
        check
          (p.initial >= p.lower_bound && p.initial <= p.upper_bound)
          "escrow initial value must lie within [lower_bound, upper_bound]"
      in
      let* () = check (p.local_quota >= 0) "escrow local_quota must be >= 0" in
      check (p.reconcile_every >= 1) "escrow reconcile_every must be >= 1"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "off" | "none" -> Ok Off
  | "on" -> Ok (On default_params)
  | other -> (
      match String.index_opt other ':' with
      | Some i when String.sub other 0 i = "on" -> (
          let arg = String.sub other (i + 1) (String.length other - i - 1) in
          match int_of_string_opt arg with
          | Some q when q >= 0 -> Ok (On { default_params with local_quota = q })
          | Some _ | None ->
              Error
                (Printf.sprintf "escrow local quota %S must be a non-negative integer" arg))
      | _ ->
          Error
            (Printf.sprintf "unknown escrow policy %S (expected off|on|on:<local_quota>)"
               other))

let policy_to_string = function Off -> "off" | On _ -> "on"

let pp_bound fmt b =
  if b = max_int then Format.pp_print_string fmt "+inf"
  else if b = min_int then Format.pp_print_string fmt "-inf"
  else Format.pp_print_int fmt b

let pp_policy fmt = function
  | Off -> Format.pp_print_string fmt "off"
  | On p ->
      Format.fprintf fmt "on(bounds [%a,%a], init %d, quota %d, reconcile %d)" pp_bound
        p.lower_bound pp_bound p.upper_bound p.initial p.local_quota p.reconcile_every

(* The O'Neil escrow test. [worst_down] (<= 0) aggregates every outstanding
   obligation that could still lower the quantity — uncommitted negative
   reservations plus delegated down-quota; [worst_up] (>= 0) likewise for
   raises. A new [delta] is admitted iff the quantity stays in bounds even
   when every outstanding obligation on the same side commits. Written as
   headroom comparisons so an unbounded side (max_int / min_int) cannot
   overflow. *)
let admits p ~value ~worst_down ~worst_up ~delta =
  if delta < 0 then
    let floor_room = value + worst_down - p.lower_bound in
    (* floor_room is how far the worst case already sits above the floor. *)
    floor_room + delta >= 0
  else if delta > 0 then
    let ceil_room = p.upper_bound - value - worst_up in
    ceil_room - delta >= 0
  else true
