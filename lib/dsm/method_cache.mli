(** Transactional method-result cache over read leases.

    A repeat {e read-only} invocation at a node that already executed the
    same method on the same object — at the same page versions — need not
    execute at all: its outcome (the read log it would produce) is already
    known. This module caches that outcome per node, keyed by
    [(oid, method, version vector of the predicted read set)], in the style
    of Pfeifer & Lockemann's transactional method caching. The runtime
    consults it before lock acquisition, {e only} when the node holds a
    valid read lease on the object ([Gdo.Lease.Cache]): the lease pins the
    node's view of the object between recalls, which is exactly the
    invalidation signal the cache needs. A hit is served with zero messages
    and zero local page reads, and is indistinguishable from re-execution
    at the cached version — the committed history stays serializable
    because the hit registers as an ordinary lease-backed read, subject to
    the same commit-time validation and recall deferral.

    Invalidation is driven from the lease layer
    ([Gdo.Lease.Cache.set_on_invalidate]): lease recall, lease expiry and
    epoch-superseding re-grants each wipe the object's entries, and a crash
    wipes a node's whole cache with its lease cache. Version advance is
    additionally caught lazily: a {!find} whose version vector differs from
    the cached one drops the entry.

    The cache is policy-gated and {!off} is inert: with the policy off the
    runtime is byte-identical to the cache-free protocol (golden-tested). *)

type policy =
  | Off  (** never cache: byte-identical to the pre-cache runtime *)
  | Lru of { capacity : int }
      (** cache up to [capacity] results per node, evicting the least
          recently used entry *)

val default_capacity : int
(** Capacity used by the short policy spellings ("on"/"lru"): 256. *)

val off : policy

val policy_enabled : policy -> bool
(** False only for {!Off}. *)

val validate_policy : policy -> (unit, string) result
(** Reject non-positive capacities. *)

val policy_of_string : string -> (policy, string) result
(** Parse ["off"]/["none"], ["on"]/["lru"] (default capacity) or
    ["lru:<capacity>"]; [Error] names the valid set. *)

val policy_to_string : policy -> string
(** ["off"] or ["lru"]; the capacity is not round-tripped (see {!pp_policy}). *)

val pp_policy : Format.formatter -> policy -> unit
(** Display form including parameters, e.g. ["lru(256)"]. *)

(** {1 Per-node cache} *)

type t

val create : policy -> t
(** Empty cache; with {!Off} every operation is a cheap no-op. *)

val enabled : t -> bool

val find :
  t -> oid:Objmodel.Oid.t -> meth:string -> versions:int array -> (int * int) list option
(** The cached read log [(page, version)] of [meth] on [oid], when an entry
    exists whose version vector equals [versions] (the current versions of
    the method's predicted read-set pages, in page order). A key hit at
    {e different} versions drops the stale entry and misses — the lazy
    version-advance invalidation. The caller must only trust a hit while
    the node's read lease on [oid] is valid. *)

val install :
  t ->
  oid:Objmodel.Oid.t ->
  meth:string ->
  versions:int array ->
  reads:(int * int) list ->
  bool
(** Record an execution's read log. False when an identical entry (same
    versions) is already cached — the caller should not count a fill.
    Evicts the least-recently-used entry at capacity. *)

val invalidate_object : t -> Objmodel.Oid.t -> int
(** Drop every entry of the object (all methods, all versions); returns the
    number dropped. Driven by the lease layer's recall/eviction hooks. *)

val clear : t -> int
(** Drop everything (node crash); returns the number dropped. *)

val entry_count : t -> int
