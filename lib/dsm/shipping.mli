(** Function-shipping policy: move the method to the data.

    LOTEC is a data-shipping protocol — pages always travel to the invoking
    site. When a method's predicted access set ([Objmodel.Access_analysis])
    lives mostly on one remote node, that costs several 4 KB page transfers
    where a single small invocation message would do; this is the paper's
    own small-messages-versus-bytes sensitivity (figs 6–8) turned into an
    optimization, in the spirit of lease-based TM task migration. This
    module holds the policy type and the pure per-call cost model; the
    runtime evaluates it at method-dispatch time and, on [Ship], executes
    the invocation as a sub-fiber at the chosen home under the unchanged
    O2PL/lease/commit rules.

    The model compares, in microseconds, with [σ] the per-message software
    cost and [β] the per-byte wire cost:

    - {e data shipping}: [C_fetch = 2σ·groups(stale) + β·page_bytes·|stale|],
      where [stale] is the set of predicted pages owned by another node and
      not locally fresh, and [groups] counts distinct source nodes (each
      costs one grouped request/reply exchange);
    - {e function shipping} to the plurality owner [h] of [stale] (ties to
      the lowest node id):
      [C_ship = σ·(2 + 2·groups(residual)) + β·(invoke + reply +
      page_bytes·|residual|)], where [residual] is the set of predicted
      pages not already resident at [h].

    The invocation ships iff [|stale| >= min_remote_pages] and
    [C_ship < C_fetch] (a tie stays home). Consequences worth noting:
    methods with no (or one) predicted remote page never ship under the
    default floor, and the ship region is downward-closed in [software_us]
    — raising σ only ever flips decisions from [Ship] to [Stay], never the
    other way (the σ-coefficient of [C_ship - C_fetch] is non-negative).

    The policy is validated by [Core.Config] and {!off} is inert: with
    shipping off the runtime is byte-identical to the data-shipping
    protocol (golden-tested). *)

type params = {
  invoke_bytes : int;  (** payload of a [Ship_invoke] message *)
  reply_bytes : int;  (** payload of a [Ship_reply] message *)
  min_remote_pages : int;
      (** floor on [|stale|] below which the model never ships; the default
          (2) keeps zero- and single-remote-page methods at the invoker *)
  software_us : float;  (** σ: per-message software cost, microseconds *)
  byte_us : float;  (** β: per-byte wire cost, microseconds *)
}

type policy =
  | Off  (** never ship: byte-identical to the data-shipping runtime *)
  | On of params

type decision =
  | Stay  (** fetch the pages; execute at the invoker *)
  | Ship of { site : int; saved_bytes : int }
      (** execute at [site]; [saved_bytes] is the predicted wire-byte saving
          (stale-page bytes minus invoke/reply/residual bytes) *)

val default_params : params
(** 256 B invoke, 64 B reply, floor 2, σ = 20 µs, β = 0.08 µs/B (the
    paper's 100 Mbit/s base link). *)

val off : policy

val policy_enabled : policy -> bool
(** False only for {!Off}. *)

val validate_policy : policy -> (unit, string) result
(** Reject non-positive message sizes, a floor below 1, or negative costs. *)

val policy_of_string : string -> (policy, string) result
(** Parse ["off"]/["none"], ["on"] (default parameters) or
    ["on:<software_us>"]; [Error] names the valid set. *)

val policy_to_string : policy -> string
(** ["off"] or ["on"]; parameters are not round-tripped (see {!pp_policy}). *)

val pp_policy : Format.formatter -> policy -> unit
(** Display form including parameters, e.g. ["on(sw 20.0us, ...)"]. *)

val decide :
  params ->
  invoker:int ->
  owners:(int * int) list ->
  fresh:(int -> bool) ->
  page_bytes:int ->
  decision
(** The cost model above. [owners] lists [(page, owning node)] for the
    invoked method's predicted pages as recorded in the GDO page map;
    [fresh page] tells whether the invoker already stores that page at its
    newest committed version; [page_bytes] is the wire cost of one page
    transfer. Deterministic: equal inputs yield equal decisions, and the
    candidate site is the plurality owner with ties broken to the lowest
    node id. *)
