(** Typed protocol events for the observability layer.

    The runtime records one of these (timestamped, into an
    [Event.t Sim.Trace.t] ring) at every protocol-level occurrence: lock
    request/grant/refusal, lease traffic, page transfers, transaction
    lifecycle, transport retransmissions and injected faults. Unlike the
    earlier stringly-typed trace, every event carries its transaction
    {e family}, object, node and byte payload as typed fields, so exporters
    can group, filter and pair them: {!Trace_export} renders a
    per-transaction timeline and Chrome trace-event JSON (one track per
    simulated node, request→grant and recall→clear spans paired by key).

    Events are {e descriptive} only: recording is gated on the configured
    trace and never alters simulation behaviour (tracing-off runs are
    byte-identical — golden-tested). Quantitative accounting lives in
    {!Metrics}; the taxonomy and its mapping to wire messages and metrics
    counters is documented in OBSERVABILITY.md. *)

open Objmodel
open Txn

type t =
  (* Locking (Algorithms 4.1/4.2). *)
  | Lock_request of { oid : Oid.t; family : Txn_id.t; node : int; mode : Lock.mode }
      (** a global acquire left [node] for the object's home *)
  | Lock_grant of { oid : Oid.t; family : Txn_id.t; node : int; mode : Lock.mode }
      (** the grant was installed at the requesting site *)
  | Lock_refused of { oid : Oid.t; family : Txn_id.t; node : int; busy : bool }
      (** the home refused: [busy] for a non-blocking refusal, otherwise the
          request would have closed a waits-for cycle *)
  | Upgrade of { oid : Oid.t; family : Txn_id.t; node : int }
      (** a Read→Write upgrade went global *)
  | Deadlock_abort of { family : Txn_id.t; node : int; cycle : int }
      (** the family aborts as a deadlock victim ([cycle] families in the cycle) *)
  (* Read leases (see [Gdo.Lease]). *)
  | Lease_granted of { oid : Oid.t; node : int; epoch : int }
  | Lease_hit of { oid : Oid.t; family : Txn_id.t; node : int }
      (** a read acquire was satisfied from the node's lease cache: zero messages *)
  | Lease_recall of { oid : Oid.t; node : int; nodes : int; epoch : int }
      (** the home ([node]) started recalling [nodes] outstanding leases *)
  | Lease_deferred of { oid : Oid.t; node : int; readers : int }
      (** a leased node defers its yield behind running lease-backed readers *)
  | Lease_yield of { oid : Oid.t; node : int }
  | Lease_recall_cleared of { oid : Oid.t; node : int }
      (** every awaited yield arrived; parked writes drain ([node] = home) *)
  | Lease_expired of { oid : Oid.t; node : int }
      (** the recall's TTL deadline force-cleared it ([node] = home) *)
  | Lease_abort of { family : Txn_id.t; node : int; oid : Oid.t option }
      (** lease validation failed: at upgrade time (with the object) or at
          root commit (validation over all lease-backed reads) *)
  (* Page movement (Algorithm 4.5). *)
  | Transfer of { oid : Oid.t; node : int; pages : int; bytes : int }
      (** acquisition-time page transfer to [node] *)
  | Demand_fetch of { oid : Oid.t; node : int; pages : int; bytes : int }
      (** stale pages pulled lazily at access time (LOTEC / RC-nested cold pages) *)
  (* Transaction lifecycle. *)
  | Root_begin of { family : Txn_id.t; node : int; oid : Oid.t; attempt : int }
  | Root_commit of { family : Txn_id.t; node : int; released : int }
  | Root_abort of { family : Txn_id.t; node : int }
      (** the attempt aborted (deadlock victim, failed lease validation, or
          out of retries); the driver may retry the family *)
  | Precommit of { txn : Txn_id.t; parent : Txn_id.t; node : int }
  | Sub_abort of { txn : Txn_id.t; node : int }
  | Recursion_reject of { family : Txn_id.t; oid : Oid.t }
  (* Transport and faults. *)
  | Retransmit of { mid : int; src : int; dst : int; attempt : int; abandoned : bool }
      (** the reliable transport retransmitted message [mid] ([abandoned]
          when it instead ran out of attempts) *)
  | Fault of { fault : Sim.Fault.event; src : int; dst : int }
      (** the injector perturbed a message *)
  (* Crash recovery (see DESIGN.md, "Failure model & recovery"). *)
  | Node_crash of { node : int; incarnation : int }
      (** a crash window opened: the node's volatile state is wiped *)
  | Node_restart of { node : int; incarnation : int }
      (** the node rejoined with a fresh [incarnation] number *)
  | Crash_abort of { family : Txn_id.t; node : int }
      (** the root family aborted because its node crashed (or its request
          was lost to a crashed home); the driver retries after the rejoin *)
  | Node_suspected of { node : int; by : int }
      (** node [by]'s failure detector first suspected [node] *)
  | Node_dead of { node : int; incarnation : int; by : int }
      (** a quorum of live observers corroborated the suspicion and [node]
          was declared dead (the last vote cast by [by]); failover and
          dead-family reclamation follow *)
  | Node_readmitted of { node : int; incarnation : int }
      (** a message from a declared-dead node was delivered: the
          declaration was false (partition, not crash) — the node rejoins
          under a fresh [incarnation] without losing state *)
  | Node_parked of { node : int; parked : bool }
      (** the node's own detector saw fewer than a majority of eligible
          peers reachable, so it parked (refusing service and new roots)
          — or unparked when the majority came back *)
  | Reclaim of { node : int; families : int; repointed : int }
      (** the directory evicted [families] dead families of [node] and
          repointed [repointed] page-map entries to surviving copies *)
  | Failover of { home : int; successor : int }
      (** [successor] took over as acting home for the crashed [home]'s
          directory partition ([gdo_replicas >= 1]) *)
  | Failback of { home : int }
      (** the partition was handed back when its real home rejoined *)
  (* Message combining (see [Dsm.Batching]). *)
  | Ack_piggyback of { src : int; dst : int; acks : int }
      (** [acks] pending transport acks rode a [src]→[dst] payload as a
          rider instead of travelling standalone *)
  | Ack_flush of { src : int; dst : int; acks : int }
      (** the flush timer fired with no payload to ride: one standalone
          [Ack] carried the channel's [acks] pending acknowledgements *)
  | Fetch_aggregated of { oid : Oid.t; node : int; pages : int; extra : int }
      (** a demand fetch was widened to the method's predicted access set:
          [pages] fetched in one round, of which [extra] were stale
          predicted pages beyond the triggering access *)
  | Release_coalesced of { node : int; home : int; families : int }
      (** [families] same-instant release batches from [node] to [home]
          travelled as a single [Release] message *)
  | Heartbeat_suppressed of { src : int; dst : int }
      (** a periodic heartbeat was skipped because the channel carried
          traffic within the last heartbeat interval *)
  (* Method-result cache (see [Dsm.Method_cache]). *)
  | Cache_hit of { oid : Oid.t; family : Txn_id.t; node : int; pages : int }
      (** a read-only invocation was served from [node]'s method cache
          under a valid lease: zero messages, [pages] page reads skipped *)
  | Cache_fill of { oid : Oid.t; node : int; pages : int }
      (** an execution's read log ([pages] pages) was installed into
          [node]'s method cache *)
  | Cache_invalidate of { oid : Oid.t option; node : int; entries : int }
      (** the lease layer invalidated [entries] cached results at [node]:
          for one object (recall/expiry/epoch bump) or — [oid = None] —
          the whole cache (node crash) *)
  (* Function shipping (see [Dsm.Shipping]). *)
  | Ship_decision of {
      oid : Oid.t;
      family : Txn_id.t;
      src : int;
      dst : int;
      shipped : bool;
      saved_bytes : int;
    }
      (** the cost model ran at method dispatch: the invocation ships
          [src]→[dst] with [saved_bytes] predicted wire bytes saved, or
          stays at [src] ([shipped = false], [dst = src]) *)
  | Ship_exec of { oid : Oid.t; family : Txn_id.t; node : int }
      (** a shipped invocation was delivered and began executing as a
          sub-fiber at home [node] *)
  (* Escrow commit (see [Dsm.Escrow]). *)
  | Escrow_reserve of { oid : Oid.t; family : Txn_id.t; node : int; delta : int; admitted : bool }
      (** the home ran the escrow admission test for a [delta] reservation;
          a refusal ([admitted = false]) sends the call down the
          exclusive-lock fallback path *)
  | Escrow_local_commit of { oid : Oid.t; family : Txn_id.t; node : int; delta : int }
      (** a commutative call committed locally against [node]'s delegated
          quota: zero messages (the local pre-commit fast path) *)
  | Escrow_delegate of { oid : Oid.t; node : int; up : int; down : int }
      (** the home delegated [up] raise / [down] lower quota units to [node] *)
  | Escrow_reconcile of { oid : Oid.t; node : int; delta : int; commits : int }
      (** [node] lazily pushed the net [delta] of [commits] local commits
          home in one [Escrow_reconcile] message *)
  | Escrow_recall of { oid : Oid.t; node : int; nodes : int; epoch : int }
      (** the home ([node]) started recalling delegated quota from [nodes]
          nodes at escrow epoch [epoch] — an exclusive access is queued *)
  | Escrow_yield of { oid : Oid.t; node : int; delta : int }
      (** [node] surrendered its quota, reconciling a final [delta] *)

val category : t -> string
(** Coarse grouping for tallies and filtering: ["lock"], ["lease"],
    ["transfer"], ["demand-fetch"], ["txn"], ["commit"], ["deadlock"],
    ["retransmit"], ["fault"], ["recursion"], ["crash"], ["suspect"],
    ["reclaim"], ["failover"], ["batch"], ["cache"], ["ship"] or
    ["escrow"]. *)

val family : t -> Txn_id.t option
(** The transaction family the event belongs to, when it has one (lease
    grants, recalls and transport/fault events do not). *)

val oid : t -> Oid.t option
(** The object the event concerns, when it has one. *)

val node : t -> int
(** The node the event is attributed to (its track in the Chrome export):
    the requesting/executing site, or the home for home-side lease events,
    or the sender for transport/fault events. *)

val pp : Format.formatter -> t -> unit
(** ["lock: o3 granted R to T17@2"] — category prefix plus detail, matching
    the timeline rendering of the [trace] CLI. *)
