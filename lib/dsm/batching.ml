(* Message-combining policy (paper §5: LOTEC trades bytes for more, smaller
   messages, so per-message software cost is its Achilles heel; combining
   small control messages is the standard countermeasure). Every feature is
   independently gated so [off] leaves the runtime byte-identical to the
   un-batched protocol. *)

let default_ack_flush_us = 50.0
let default_ack_rider_bytes = 8

type t = {
  ack_piggyback : bool;
  ack_flush_us : float;
  ack_rider_bytes : int;
  aggregate_fetch : bool;
  coalesce_release : bool;
  release_flush_us : float;
  piggyback_heartbeat : bool;
}

let off =
  {
    ack_piggyback = false;
    ack_flush_us = default_ack_flush_us;
    ack_rider_bytes = default_ack_rider_bytes;
    aggregate_fetch = false;
    coalesce_release = false;
    release_flush_us = 0.0;
    piggyback_heartbeat = false;
  }

let all =
  {
    off with
    ack_piggyback = true;
    aggregate_fetch = true;
    coalesce_release = true;
    piggyback_heartbeat = true;
  }

let enabled t =
  t.ack_piggyback || t.aggregate_fetch || t.coalesce_release || t.piggyback_heartbeat

let validate t =
  if t.ack_flush_us <= 0.0 then Error "batching ack_flush_us must be positive"
  else if t.ack_rider_bytes < 0 then Error "batching ack_rider_bytes must be >= 0"
  else if t.release_flush_us < 0.0 then Error "batching release_flush_us must be >= 0"
  else Ok ()

let of_string s =
  match String.lowercase_ascii s with
  | "off" | "none" -> Ok off
  | "all" | "on" -> Ok all
  | other -> Error (Printf.sprintf "unknown batching policy %S (expected off|all)" other)

let to_string t = if enabled t then "all" else "off"

let pp fmt t =
  if not (enabled t) then Format.pp_print_string fmt "off"
  else begin
    let features =
      List.filter_map
        (fun (on, name) -> if on then Some name else None)
        [
          (t.ack_piggyback, Printf.sprintf "acks(flush %.0fus)" t.ack_flush_us);
          (t.aggregate_fetch, "fetch");
          ( t.coalesce_release,
            if t.release_flush_us > 0.0 then
              Printf.sprintf "release(%.0fus)" t.release_flush_us
            else "release" );
          (t.piggyback_heartbeat, "heartbeat");
        ]
    in
    Format.pp_print_string fmt (String.concat "+" features)
  end
