(** Escrow commit: coordination-avoiding concurrency control for commuting
    operations.

    The bank workload is all deposits and withdrawals — operations that
    commute, yet under plain O2PL serialize on exclusive object locks. With
    escrow enabled, methods declared commutative
    ({!Objmodel.Method_ir.commutativity}) update a bounded integer {e escrowed
    quantity} attached to their object instead of locking its pages: a
    sub-transaction {e reserves} a signed delta at the object's directory
    home, the home admits the reservation whenever the worst case over all
    outstanding reservations keeps the quantity inside
    [[lower_bound, upper_bound]] (the classic escrow test), and admitted
    reservations proceed concurrently — commit folds the delta in, abort
    releases the reservation, and neither waits on the other.

    Two coordination-avoidance levels stack on top:

    - {e quota delegation}: the home may delegate [local_quota] units of
      headroom per side to a node; commutative calls whose family's entire
      access path stays commutative then commit {e locally} against the quota
      with zero messages (the local pre-commit fast path);
    - {e lazy reconciliation}: locally committed deltas are pushed home in a
      single [Escrow_reconcile] message every [reconcile_every] local
      commits (or when the quota runs dry), and quotas are {e recalled} with
      epoch fencing — exactly the lease recall dance — when a
      non-commutative access needs the object exclusively.

    The policy is validated by [Core.Config]; {!off} is inert and
    golden-tested byte-identical to the exclusive-locking runtime. With the
    policy on, [Core.Serializability.check_escrow] replays the escrow event
    log and asserts bounds and conservation. *)

type params = {
  lower_bound : int;  (** invariant floor of every escrowed quantity *)
  upper_bound : int;  (** invariant ceiling; [max_int] means unbounded *)
  initial : int;  (** starting quantity of each escrowed object *)
  local_quota : int;
      (** headroom units delegated per (node, object, side); [0] disables
          the local fast path, leaving per-reservation home round trips *)
  reconcile_every : int;
      (** local commits between lazy [Escrow_reconcile] pushes to the home *)
}

type policy =
  | Off  (** never escrow: byte-identical to the exclusive-locking runtime *)
  | On of params

val default_params : params
(** Bank-account shape: bounds [[0, +inf)], initial 1000, quota 16,
    reconcile every 8 local commits. *)

val off : policy

val policy_enabled : policy -> bool
(** False only for {!Off}. *)

val validate_policy : policy -> (unit, string) result
(** Reject inverted bounds, an initial value outside them, a negative
    quota, or a reconcile period below 1. *)

val policy_of_string : string -> (policy, string) result
(** Parse ["off"]/["none"], ["on"] (default parameters) or
    ["on:<local_quota>"]; [Error] names the valid set. *)

val policy_to_string : policy -> string
(** ["off"] or ["on"]; parameters are not round-tripped (see {!pp_policy}). *)

val pp_policy : Format.formatter -> policy -> unit
(** Display form including parameters, e.g.
    ["on(bounds [0,+inf], init 1000, quota 16, reconcile 8)"]. *)

val admits : params -> value:int -> worst_down:int -> worst_up:int -> delta:int -> bool
(** The escrow admission test. [value] is the object's committed quantity at
    the home; [worst_down <= 0] sums every outstanding obligation that could
    still lower it (uncommitted negative reservations, delegated down-quota)
    and [worst_up >= 0] likewise for raises. [admits] is true iff applying
    [delta] keeps the quantity inside the bounds even when all same-side
    obligations commit. Written as headroom comparisons, so an unbounded
    side never overflows. *)
