open Objmodel

type t = { node : int; pages : (int, int) Hashtbl.t Oid.Table.t }

let absent = -1

let create ~node = { node; pages = Oid.Table.create 64 }

let node t = t.node

let table_for t oid =
  match Oid.Table.find_opt t.pages oid with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 8 in
      Oid.Table.add t.pages oid tbl;
      tbl

let version t oid ~page =
  match Oid.Table.find_opt t.pages oid with
  | None -> absent
  | Some tbl -> ( match Hashtbl.find_opt tbl page with Some v -> v | None -> absent)

let receive t oid ~page ~version:v =
  let tbl = table_for t oid in
  let cur = match Hashtbl.find_opt tbl page with Some c -> c | None -> absent in
  if v > cur then Hashtbl.replace tbl page v

let write t oid ~page ~new_version =
  let tbl = table_for t oid in
  let prev = match Hashtbl.find_opt tbl page with Some c -> c | None -> absent in
  Hashtbl.replace tbl page new_version;
  prev

let restore t oid ~page ~version:v =
  let tbl = table_for t oid in
  if v = absent then Hashtbl.remove tbl page else Hashtbl.replace tbl page v

let is_current t oid ~page ~newest = version t oid ~page >= newest

let cached_pages t oid =
  match Oid.Table.find_opt t.pages oid with
  | None -> []
  | Some tbl ->
      Hashtbl.fold (fun p v acc -> (p, v) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let cached_objects t =
  Oid.Table.fold
    (fun oid tbl acc -> if Hashtbl.length tbl > 0 then oid :: acc else acc)
    t.pages []
  |> List.sort Oid.compare

let dump t =
  (* Ascending oid, ascending page — never hash order: the dump is diffed
     across runs (and hash seeds) by determinism checks. *)
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "page store (node %d):\n" t.node);
  List.iter
    (fun oid ->
      Buffer.add_string b (Format.asprintf "  %a:" Oid.pp oid);
      List.iter
        (fun (p, v) -> Buffer.add_string b (Printf.sprintf " %d@v%d" p v))
        (cached_pages t oid);
      Buffer.add_char b '\n')
    (cached_objects t);
  Buffer.contents b
