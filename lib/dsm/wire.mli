(** The wire-message catalog: every message type the runtime puts on the
    simulated interconnect.

    LOTEC's headline result is a tradeoff — fewer consistency {e bytes} at
    the cost of more small {e messages} — so the protocol is sensitive to
    per-message software overhead (paper §5). Aggregate byte counters cannot
    show where those messages come from; this enumeration lets the metrics
    ledger attribute every remote message to the protocol operation that
    sent it (see {!Metrics.record_wire} and the wire-catalog table in
    PROTOCOL.md).

    The catalog is exhaustive: every remote send in [Core.Runtime] carries
    exactly one of these types, so the per-type counts and bytes reconcile
    exactly with the aggregate message/byte totals of {!Metrics}.
    Retransmitted copies of a message (reliable transport under fault
    injection) are recorded under the {e original} message's type — a
    retransmitted grant is still a grant on the wire — while the
    transport-level acknowledgements they solicit are {!Ack}s. *)

type t =
  | Acquire_request  (** site → home: global lock acquisition (Algorithm 4.2) *)
  | Grant
      (** home → site: lock grant carrying the holder list and page map
          (sized [control_msg_bytes + pages × page_map_entry_bytes]), with a
          read lease piggybacked when the lease policy admits one *)
  | Refusal  (** home → site: [Busy] or [Deadlock] reply to an acquire *)
  | Release
      (** site → home: root-release batch with per-object dirty page info
          (Algorithm 4.4) *)
  | Gdo_replica
      (** home → replica: asynchronous directory-mutation update (paper
          §4.1, "partitioned and replicated") *)
  | Page_request  (** acquiring site → holder: pages to transfer (Algorithm 4.5) *)
  | Page_reply
      (** holder → acquiring site: page payload, the only {e large} message
          besides {!Eager_push} *)
  | Eager_push  (** RC-nested: dirty pages pushed to the copyset at root release *)
  | Lease_recall  (** home → leased node: surrender the read lease (see [Gdo.Lease]) *)
  | Lease_yield  (** leased node → home: every lease-backed reader has drained *)
  | Ack  (** transport-level acknowledgement of the reliable transport *)
  | Heartbeat
      (** node → node: periodic liveness beacon feeding
          [Sim.Failure_detector]; sent unreliably (no ack, no retransmit)
          and only when crash windows are configured *)
  | Suspect
      (** observer → surviving node: a suspicion vote for the quorum
          membership protocol. Receivers corroborate only from their own
          detector's evidence; once a quorum of live observers agrees the
          node is declared dead and the verdict is gossiped (as detector
          hints), triggering dead-family reclamation at the homes *)
  | Failover_confirm
      (** successor home → holder node: conservative state reconfirmation
          after a GDO home failover (paper §4.1 replication made live) *)
  | Ship_invoke
      (** invoker → executing home: a function-shipped method invocation —
          the small message that replaces the stale-page transfers when the
          {!Shipping} cost model decides to move the method to the data *)
  | Ship_reply
      (** executing home → invoker: outcome of a shipped invocation
          (committed-into-family, aborted, or refused), unblocking the
          invoking fiber *)
  | View_change
      (** declarer (or readmitted node) → every live node: a membership
          epoch bump — a node was declared dead by quorum, or a falsely
          declared node was readmitted. Receivers max-merge the carried
          epoch into their view; requests stamped with an older epoch are
          refused by the partition's acting home (split-brain fencing) *)
  | Escrow_request
      (** site → home: reserve a signed delta against an escrowed object's
          quantity (the {!Escrow} admission test runs at the home); asks for
          a delegated quota top-up in the same message when the local fast
          path has drained its side *)
  | Escrow_reply
      (** home → site: admission verdict for an escrow reservation, carrying
          any delegated quota grant as a rider *)
  | Escrow_commit
      (** site → home: fold a previously admitted reservation's delta into
          the committed quantity (root commit), or release it (abort) *)
  | Escrow_reconcile
      (** site → home: lazy push of locally quota-committed deltas — one
          small message summarising up to [reconcile_every] zero-message
          local commits *)
  | Escrow_recall
      (** home → quota-holding node: surrender the delegated escrow quota —
          a non-commutative access needs the object exclusively; epoch-fenced
          exactly like a lease recall *)
  | Escrow_yield
      (** quota-holding node → home: quota surrendered, carrying the final
          unreconciled local delta so the home's quantity is exact again *)

val all : t list
(** Every message type, in declaration order. *)

val count : int
(** [List.length all]. *)

val index : t -> int
(** Dense index in [0, count): position in {!all}; for array-backed
    per-type counters. *)

val to_string : t -> string
(** Stable lower-case name, e.g. ["acquire-request"]. *)

val kind : t -> Sim.Network.kind
(** The network-layer classification this message type is sent under:
    [Data] for {!Page_reply} and {!Eager_push}, [Control] for everything
    else. *)

val pp : Format.formatter -> t -> unit
