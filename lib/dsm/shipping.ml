(* Function-shipping policy: a per-invocation cost model that decides, at
   method-dispatch time, whether to move the predicted pages to the invoker
   (LOTEC's default data shipping) or to move the *invocation* to the node
   that already stores most of them. The model is pure — the runtime feeds
   it the invoked method's page prediction, the GDO page map and the
   invoker's local freshness, and acts on the verdict. *)

type params = {
  invoke_bytes : int;
  reply_bytes : int;
  min_remote_pages : int;
  software_us : float;
  byte_us : float;
}

type policy = Off | On of params

type decision = Stay | Ship of { site : int; saved_bytes : int }

let default_params =
  {
    invoke_bytes = 256;
    reply_bytes = 64;
    min_remote_pages = 2;
    software_us = 20.0;
    (* 0.08 us/byte = an 100 Mbit/s link, the paper's base interconnect. *)
    byte_us = 0.08;
  }

let off = Off

let policy_enabled = function Off -> false | On _ -> true

let validate_policy = function
  | Off -> Ok ()
  | On p ->
      let check cond msg = if cond then Ok () else Error msg in
      let ( let* ) = Result.bind in
      let* () = check (p.invoke_bytes > 0) "shipping invoke_bytes must be positive" in
      let* () = check (p.reply_bytes > 0) "shipping reply_bytes must be positive" in
      let* () =
        check (p.min_remote_pages >= 1) "shipping min_remote_pages must be >= 1"
      in
      let* () = check (p.software_us >= 0.0) "shipping software_us must be >= 0" in
      check (p.byte_us >= 0.0) "shipping byte_us must be >= 0"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "off" | "none" -> Ok Off
  | "on" -> Ok (On default_params)
  | other -> (
      match String.index_opt other ':' with
      | Some i when String.sub other 0 i = "on" -> (
          let arg = String.sub other (i + 1) (String.length other - i - 1) in
          match float_of_string_opt arg with
          | Some c when c >= 0.0 -> Ok (On { default_params with software_us = c })
          | Some _ | None ->
              Error
                (Printf.sprintf "shipping software cost %S must be a non-negative number"
                   arg))
      | _ ->
          Error
            (Printf.sprintf "unknown shipping policy %S (expected off|on|on:<software_us>)"
               other))

let policy_to_string = function Off -> "off" | On _ -> "on"

let pp_policy fmt = function
  | Off -> Format.pp_print_string fmt "off"
  | On p ->
      Format.fprintf fmt "on(sw %.1fus, %.3fus/B, min %d, inv %dB, rep %dB)"
        p.software_us p.byte_us p.min_remote_pages p.invoke_bytes p.reply_bytes

(* Number of distinct source nodes in a page list: each source costs one
   request/reply exchange under the runtime's grouped demand fetch. *)
let group_count owners =
  let nodes = List.sort_uniq compare (List.map snd owners) in
  List.length nodes

(* The plurality owner among the invoker's stale pages; ties break to the
   lowest node id so the decision is deterministic across runs. *)
let plurality_owner stale =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (_, node) ->
      Hashtbl.replace counts node (1 + Option.value ~default:0 (Hashtbl.find_opt counts node)))
    stale;
  Hashtbl.fold
    (fun node count best ->
      match best with
      | Some (bn, bc) when bc > count || (bc = count && bn < node) -> best
      | _ -> Some (node, count))
    counts None

let decide p ~invoker ~owners ~fresh ~page_bytes =
  (* Pages the invoker would have to pull over the wire: owned elsewhere and
     not already locally fresh. *)
  let stale = List.filter (fun (page, node) -> node <> invoker && not (fresh page)) owners in
  if List.length stale < p.min_remote_pages then Stay
  else
    match plurality_owner stale with
    | None -> Stay
    | Some (site, _) ->
        (* Residual pages the *home* would still have to pull if the method
           ran there: everything predicted but not already resident at it.
           The invoker's freshness does not transfer — the home fetches from
           the page map like any other site. *)
        let residual = List.filter (fun (_, node) -> node <> site) owners in
        let cost_fetch =
          (2.0 *. p.software_us *. float_of_int (group_count stale))
          +. (p.byte_us *. float_of_int (page_bytes * List.length stale))
        in
        let ship_bytes =
          p.invoke_bytes + p.reply_bytes + (page_bytes * List.length residual)
        in
        let cost_ship =
          (p.software_us *. float_of_int (2 + (2 * group_count residual)))
          +. (p.byte_us *. float_of_int ship_bytes)
        in
        if cost_ship < cost_fetch then
          Ship { site; saved_bytes = (page_bytes * List.length stale) - ship_bytes }
        else Stay
