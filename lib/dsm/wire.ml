type t =
  | Acquire_request
  | Grant
  | Refusal
  | Release
  | Gdo_replica
  | Page_request
  | Page_reply
  | Eager_push
  | Lease_recall
  | Lease_yield
  | Ack
  | Heartbeat
  | Suspect
  | Failover_confirm
  | Ship_invoke
  | Ship_reply
  | View_change
  | Escrow_request
  | Escrow_reply
  | Escrow_commit
  | Escrow_reconcile
  | Escrow_recall
  | Escrow_yield

let all =
  [
    Acquire_request; Grant; Refusal; Release; Gdo_replica; Page_request; Page_reply;
    Eager_push; Lease_recall; Lease_yield; Ack; Heartbeat; Suspect; Failover_confirm;
    Ship_invoke; Ship_reply; View_change; Escrow_request; Escrow_reply; Escrow_commit;
    Escrow_reconcile; Escrow_recall; Escrow_yield;
  ]

let count = List.length all

let index = function
  | Acquire_request -> 0
  | Grant -> 1
  | Refusal -> 2
  | Release -> 3
  | Gdo_replica -> 4
  | Page_request -> 5
  | Page_reply -> 6
  | Eager_push -> 7
  | Lease_recall -> 8
  | Lease_yield -> 9
  | Ack -> 10
  | Heartbeat -> 11
  | Suspect -> 12
  | Failover_confirm -> 13
  | Ship_invoke -> 14
  | Ship_reply -> 15
  | View_change -> 16
  | Escrow_request -> 17
  | Escrow_reply -> 18
  | Escrow_commit -> 19
  | Escrow_reconcile -> 20
  | Escrow_recall -> 21
  | Escrow_yield -> 22

let to_string = function
  | Acquire_request -> "acquire-request"
  | Grant -> "grant"
  | Refusal -> "refusal"
  | Release -> "release"
  | Gdo_replica -> "gdo-replica"
  | Page_request -> "page-request"
  | Page_reply -> "page-reply"
  | Eager_push -> "eager-push"
  | Lease_recall -> "lease-recall"
  | Lease_yield -> "lease-yield"
  | Ack -> "ack"
  | Heartbeat -> "heartbeat"
  | Suspect -> "suspect"
  | Failover_confirm -> "failover-confirm"
  | Ship_invoke -> "ship-invoke"
  | Ship_reply -> "ship-reply"
  | View_change -> "view-change"
  | Escrow_request -> "escrow-request"
  | Escrow_reply -> "escrow-reply"
  | Escrow_commit -> "escrow-commit"
  | Escrow_reconcile -> "escrow-reconcile"
  | Escrow_recall -> "escrow-recall"
  | Escrow_yield -> "escrow-yield"

let kind = function
  | Page_reply | Eager_push -> Sim.Network.Data
  | Acquire_request | Grant | Refusal | Release | Gdo_replica | Page_request
  | Lease_recall | Lease_yield | Ack | Heartbeat | Suspect | Failover_confirm
  | Ship_invoke | Ship_reply | View_change | Escrow_request | Escrow_reply
  | Escrow_commit | Escrow_reconcile | Escrow_recall | Escrow_yield ->
      Sim.Network.Control

let pp fmt t = Format.pp_print_string fmt (to_string t)
