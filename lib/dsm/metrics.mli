(** Measurement ledger for a simulation run.

    Records, per shared object, the consistency traffic (message and byte
    counts, split control/data) plus system-wide transaction counters. The
    per-object message ledger is what regenerates the paper's figures:

    - Figures 2–5 plot [data_bytes] (+ control) per object;
    - Figures 6–8 replay the ledger through {!object_time_us} for a grid of
      (bandwidth × software cost) link parameters — exactly how the authors
      "instrumented [the] simulator to assess the effects of changing the
      network bandwidth and message initiation overhead". *)

type per_object = {
  mutable messages : int;
  mutable control_messages : int;
  mutable control_bytes : int;
  mutable data_messages : int;
  mutable data_bytes : int;
  mutable demand_fetches : int;
  mutable acquisitions : int;  (** global lock acquisitions granted *)
}

type t

val create : unit -> t
(** Fresh ledger: every counter zero, every histogram empty. *)

val record_message :
  t -> oid:Objmodel.Oid.t -> kind:Sim.Network.kind -> bytes:int -> unit
(** Fed from the network's [on_message] hook; [oid] comes from the message
    tag. Untagged traffic (negative tag in the hook) should be recorded
    against {!untagged}. *)

val untagged : Objmodel.Oid.t
(** Pseudo-object charging traffic not attributable to a single object
    (multi-object root release messages). *)

val record_demand_fetch : t -> oid:Objmodel.Oid.t -> unit
val record_acquisition : t -> oid:Objmodel.Oid.t -> unit

(** {1 Per-message-type wire ledger}

    The runtime records every remote protocol message under its
    {!Wire.t} type at send time, retransmitted copies included (under the
    original type), in parallel with the per-object ledger fed by the
    network hook. The two reconcile exactly: {!wire_messages_total} equals
    {!total_messages} and {!wire_bytes_total} equals {!total_bytes} — the
    invariant is test-enforced. This is the breakdown that makes the
    paper's messages-vs-bytes tradeoff visible per message type (see
    OBSERVABILITY.md). *)

val record_wire : t -> mtype:Wire.t -> bytes:int -> unit

val record_rider : t -> mtype:Wire.t -> count:int -> bytes:int -> unit
(** Account [count] control payloads of type [mtype] that rode a carrier
    message of another type (piggybacked acks on a payload, a heartbeat
    satisfied by data traffic): the rider's bytes are added under [mtype]
    with {e zero} messages, because the carrier was already counted as one
    message carrying its base-plus-rider bytes. Both reconciliation
    equalities above keep holding exactly with riders present. *)

val wire_breakdown : t -> (Wire.t * int * int) list
(** [(type, messages, bytes)] for every catalog type, in {!Wire.all}
    order, zero rows included. Bytes include rider bytes recorded under the
    type. *)

val wire_rider_breakdown : t -> (Wire.t * int) list
(** [(type, riders)] for every catalog type, in {!Wire.all} order. *)

val wire_messages_total : t -> int
val wire_bytes_total : t -> int

val wire_riders_total : t -> int
(** Total combined payloads across all types; 0 without batching. *)

val pp_wire_breakdown : Format.formatter -> t -> unit
(** Table of the non-zero rows of {!wire_breakdown} plus a total line; a
    riders column appears when any payload was combined. *)

(** {1 Latency histograms}

    HDR-style distributions (see {!Histogram}) recorded by the runtime:

    - {e acquire}: global lock acquisition, from the request leaving the
      fiber to the grant being installed (granted acquires only);
    - {e commit}: submission to root commit, committed roots only —
      retries and their backoff included;
    - {e recall}: lease recall-to-clear, from the home issuing the recall
      to the last yield arriving (or the TTL force-clear);
    - {e recovery}: crash-to-recommit, from a root family's first
      crash-induced abort to its eventual commit (committed,
      crash-affected roots only). *)

val acquire_latency : t -> Histogram.t
val commit_latency : t -> Histogram.t
val recall_latency : t -> Histogram.t
val recovery_latency : t -> Histogram.t

val declaration_latency : t -> Histogram.t
(** Suspicion-to-declaration: from an observer first suspecting a node to
    the quorum declaring that (node, incarnation) dead. Empty unless the
    membership machinery declared someone. *)

val record_acquire_latency_us : t -> float -> unit
val record_commit_latency_us : t -> float -> unit
val record_recall_latency_us : t -> float -> unit
val record_recovery_latency_us : t -> float -> unit
val record_declaration_latency_us : t -> float -> unit

val pp_latencies : Format.formatter -> t -> unit
(** p50/p90/p99/max lines for the histograms (recall and recovery only
    when non-empty). *)

(** {1 System-wide counters} *)
val incr_roots_committed : t -> unit
val incr_roots_aborted : t -> unit
val incr_deadlock_aborts : t -> unit
val incr_sub_aborts : t -> unit
val incr_retries : t -> unit
val incr_local_acquisitions : t -> unit
val incr_global_acquisitions : t -> unit
val incr_upgrades : t -> unit
val incr_eager_pushes : t -> unit

(** {1 Fault-injection counters}

    See [Sim.Fault] and the runtime's reliable transport: network-level
    drops (including crash-window losses) and duplicates, and
    transport-level retransmissions and retransmit-timer expiries. All zero
    on a fault-free run. *)
val incr_drops : t -> unit
val incr_duplicates : t -> unit
val incr_retransmits : t -> unit
val incr_timeouts : t -> unit

(** {1 Lease-subsystem counters}

    See [Gdo.Lease]: leases granted by homes,
   read acquisitions satisfied locally by a valid lease (zero home-node
   messages), recall messages sent, yields received, recalls resolved by TTL
   expiry instead of yields, and families aborted by commit/upgrade-time
   lease validation. [incr_gdo_releases] counts release batches the home
   processes — together with acquisitions and recall traffic it makes up
   {!home_lock_ops}. All zero when the lease policy is [Off]. *)
val incr_gdo_releases : t -> unit
val incr_lease_grants : t -> unit
val incr_lease_hits : t -> unit
val add_lease_recalls : t -> int -> unit
val incr_lease_yields : t -> unit
val incr_lease_expiries : t -> unit
val incr_lease_aborts : t -> unit

(** {1 Crash-recovery counters}

    See [Sim.Failure_detector] and DESIGN.md "Failure model & recovery":
    reliable-transport deliveries abandoned after [max_retransmits]
    (each surfaces as a suspect hint, never a stall), root families
    aborted by a crash, nodes declared dead by the suspicion protocol,
    dead families evicted from the directory, and GDO home failovers.
    All zero on a crash-free run. *)
val incr_give_ups : t -> unit
val incr_crash_aborts : t -> unit
val incr_nodes_declared_dead : t -> unit
val add_families_reclaimed : t -> int -> unit
val incr_failovers : t -> unit

(** {1 Quorum-membership counters}

    See DESIGN.md "Failure model & recovery": suspicion corroborations
    recorded by the quorum detector (one per distinct (observer, suspect,
    incarnation)), declarations whose subject was in fact alive (a
    partition or gray failure, not a crash — ground truth is consulted for
    this tally only, never for the protocol decision), falsely-declared
    nodes readmitted on proof of life, state-changing requests rejected
    for carrying a stale membership epoch (or arriving at a node no longer
    serving the partition), acquire processing deferred until a declared
    node's outstanding leases provably expired, and nodes that parked
    because they could no longer reach a majority. All zero unless crash
    or link windows are configured. *)
val incr_quorum_votes : t -> unit
val incr_false_suspicions : t -> unit
val incr_node_readmissions : t -> unit
val incr_stale_epoch_rejects : t -> unit
val incr_fence_deferrals : t -> unit
val incr_node_parks : t -> unit

(** {1 Message-combining counters}

    See [Dsm.Batching]: transport acks that rode a payload instead of
    travelling standalone (and the flush messages that carried the rest),
    extra predicted pages aggregated into demand-fetch rounds that would
    otherwise have needed their own request/reply pairs, release batches
    merged into another family's [Release] message, and periodic heartbeats
    suppressed because the channel carried recent traffic. All zero when
    batching is off. *)
val add_acks_piggybacked : t -> int -> unit
val add_acks_flushed : t -> int -> unit
val add_fetches_aggregated : t -> int -> unit
val add_releases_coalesced : t -> int -> unit
val incr_heartbeats_suppressed : t -> unit

(** {1 Method-cache counters}

    See [Dsm.Method_cache]: consults of the per-node method-result cache
    that hit (the invocation was served from the cached read log — zero
    messages, zero page reads) or missed, executions whose read log was
    installed into the cache, and entries wiped by the lease layer's
    invalidation hooks (recall/expiry/epoch bump) or a node crash. All
    zero when the method-cache policy is [Off]. *)
val incr_cache_hits : t -> unit
val incr_cache_misses : t -> unit
val incr_cache_fills : t -> unit
val add_cache_invalidations : t -> int -> unit

(** {1 Function-shipping counters}

    See [Dsm.Shipping]: cost-model verdicts that shipped the invocation to
    its majority home, verdicts that kept it at the invoker, re-invocations
    forced to an already-pinned execution site without consulting the model
    (one site per (family, object)), and the cumulative predicted wire-byte
    saving of the shipped calls (stale-page bytes avoided minus
    invoke/reply/residual bytes — a model-side estimate; the measured saving
    is the byte-ledger delta the ship experiment reports). All zero when the
    shipping policy is [Off]. *)
val incr_ships : t -> unit
val incr_ship_declines : t -> unit
val incr_ships_forced : t -> unit
val add_ship_bytes_saved : t -> int -> unit

(** {1 Escrow counters}

    See [Dsm.Escrow]: delta reservations admitted at GDO homes (one per
    [Escrow_request]/[Escrow_reply] round trip), commutative calls committed
    locally against delegated quota with zero messages, lazy
    [Escrow_reconcile] pushes of accumulated local deltas, quota recall
    round trips the home initiated for a conflicting exclusive access (and
    the yields that answered them), reservations refused (bounds or a held
    lock — the call fell back to the exclusive-lock path), and quota units
    delegated to nodes. All zero when the escrow policy is [Off]. *)
val incr_escrow_reserves : t -> unit
val incr_escrow_local_commits : t -> unit
val incr_escrow_reconciles : t -> unit
val incr_escrow_recalls : t -> unit
val incr_escrow_yields : t -> unit
val incr_escrow_refusals : t -> unit
val add_escrow_quota_units : t -> int -> unit

val home_lock_ops : t -> int
(** Lock-protocol operations processed by GDO homes: global acquisitions +
    upgrades + release batches + recall/yield messages. The lease
    experiment's headline metric. *)

type totals = {
  roots_committed : int;
  roots_aborted : int;
  deadlock_aborts : int;
  sub_aborts : int;
  retries : int;
  local_acquisitions : int;
  global_acquisitions : int;
  upgrades : int;
  eager_pushes : int;
  demand_fetches : int;
  drops : int;
  duplicates : int;
  retransmits : int;
  timeouts : int;
  gdo_releases : int;
  lease_grants : int;
  lease_hits : int;
  lease_recalls : int;
  lease_yields : int;
  lease_expiries : int;
  lease_aborts : int;
  give_ups : int;
  crash_aborts : int;
  nodes_declared_dead : int;
  families_reclaimed : int;
  failovers : int;
  quorum_votes : int;
  false_suspicions : int;
  node_readmissions : int;
  stale_epoch_rejects : int;
  fence_deferrals : int;
  node_parks : int;
  acks_piggybacked : int;
  acks_flushed : int;
  fetches_aggregated : int;
  releases_coalesced : int;
  heartbeats_suppressed : int;
  cache_hits : int;
  cache_misses : int;
  cache_fills : int;
  cache_invalidations : int;
  ships : int;
  ship_declines : int;
  ships_forced : int;
  ship_bytes_saved : int;
  escrow_reserves : int;
  escrow_local_commits : int;
  escrow_reconciles : int;
  escrow_recalls : int;
  escrow_yields : int;
  escrow_refusals : int;
  escrow_quota_units : int;
}

val totals : t -> totals

val per_object : t -> Objmodel.Oid.t -> per_object
(** Zeroed entry if the object generated no traffic. *)

val objects : t -> Objmodel.Oid.t list
(** Objects with recorded traffic, ascending (excludes {!untagged} unless it
    has traffic). *)

val total_bytes : t -> int
val total_data_bytes : t -> int
val total_messages : t -> int

val object_time_us : t -> Objmodel.Oid.t -> link:Sim.Network.link -> float
(** Total message time to maintain the object's consistency under the given
    link: [messages * software_cost + bytes * 8 / bandwidth]. *)

val total_time_us : t -> link:Sim.Network.link -> float

val object_time_us_am :
  t -> Objmodel.Oid.t -> link:Sim.Network.link -> control_software_cost_us:float -> float
(** Active-messages variant of {!object_time_us} (paper §6: "integration of
    active messaging into LOTEC to improve its performance for gigabit
    networks"): control messages — lock traffic, page requests, the small
    messages LOTEC sends many of — are charged
    [control_software_cost_us] instead of the link's software cost; data
    messages and all serialisation terms are unchanged. *)

val total_time_us_am :
  t -> link:Sim.Network.link -> control_software_cost_us:float -> float

val size_histogram : t -> (int * int) list
(** Message-size distribution as (upper-bound bytes, count) pairs with
    power-of-two buckets from 128 B up (the last bucket's bound is
    [max_int]). Substantiates the paper's observation that LOTEC "sends
    many more messages (albeit small ones)": LOTEC's extra traffic lands in
    the small buckets. *)

val completion_time_us : t -> float
val set_completion_time_us : t -> float -> unit
(** Simulated makespan of the run, recorded by the runtime. *)

val pp_summary : Format.formatter -> t -> unit
