(** Message-combining (batching) policy.

    The paper's §5 caveat is that LOTEC's lazy page movement trades fewer
    consistency {e bytes} for {e more, smaller messages}, so its advantage
    over OTEC erodes as the per-message software cost rises. This policy
    gates the runtime's message-combining layer, the standard
    countermeasure: transport acks ride the next same-channel payload,
    a method's demand fetches for one object are aggregated into a single
    request/response pair, same-instant per-home release batches are
    coalesced, and heartbeats are suppressed when recent data traffic
    already proves liveness.

    Every feature is independently switchable and {!off} is inert: a run
    with the policy off is byte-identical to the pre-batching runtime
    (golden-tested). Combined sends stay honest in the wire ledger:
    piggybacked acks/heartbeats are accounted as 0-message riders (see
    {!Metrics.record_rider}), so the per-type ledger still reconciles
    exactly with the network totals. *)

type t = {
  ack_piggyback : bool;
      (** Defer transport acks and attach them to the next payload on the
          same (receiver → sender) channel; a standalone [Ack] message is
          sent only when {!field-ack_flush_us} elapses with no payload (and
          then carries every ack pending on the channel). Only meaningful
          under an active fault model — the reliable transport sends no
          acks otherwise. *)
  ack_flush_us : float;
      (** Flush timer for pending acks; must be positive and well below the
          retransmit timeout or piggybacking causes spurious retransmits. *)
  ack_rider_bytes : int;
      (** Bytes one piggybacked ack adds to its carrier message. *)
  aggregate_fetch : bool;
      (** At the first demand fetch of a method on an object, fetch every
          stale page of the method's predicted access set — one
          request/response pair per source instead of one per touched
          attribute group. *)
  coalesce_release : bool;
      (** Combine release batches from one node to one home that commit at
          the same instant (or within {!field-release_flush_us}) into a
          single [Release] message. Stands down under crash injection: a
          commit's releases must leave the node atomically with the commit
          point. *)
  release_flush_us : float;
      (** Coalescing window for releases; [0] combines only releases issued
          at the same simulated instant. *)
  piggyback_heartbeat : bool;
      (** Suppress a periodic [Heartbeat] when the channel carried any
          message within the last heartbeat interval — delivered traffic
          refreshes the receiver's failure detector instead. Only
          meaningful when crash windows are configured. *)
}

val off : t
(** Everything disabled (with default timer/byte parameters): the runtime
    behaves byte-identically to the pre-batching protocol. *)

val all : t
(** Every combining feature on, default parameters,
    [release_flush_us = 0] (same-instant coalescing only). *)

val enabled : t -> bool
(** Whether any feature is on. *)

val validate : t -> (unit, string) result

val of_string : string -> (t, string) result
(** ["off"]/["none"] or ["all"]/["on"] (default parameters). *)

val to_string : t -> string
(** ["off"] or ["all"] — the coarse policy name; see {!pp} for details. *)

val pp : Format.formatter -> t -> unit
(** Feature list, e.g. ["acks(flush 50us)+fetch+release+heartbeat"]. *)
