(** HDR-style latency histogram with bounded relative error.

    Values (simulated microseconds, non-negative) are recorded into
    logarithmic buckets with linear sub-buckets, in the manner of
    HdrHistogram: values below {!linear_limit} land in exact unit-width
    buckets; above it, each power-of-two range is split into 32 equal
    sub-buckets, bounding the relative quantization error of any reported
    quantile by 1/32 (≈ 3.2%). Recording is O(1) with no allocation;
    memory is a few KiB per histogram regardless of the value range.

    The metrics ledger keeps one histogram per tracked latency (lock
    acquire, root commit, lease recall-to-yield — see {!Metrics}); the
    [trace] CLI and the bench harness report p50/p90/p99 from them. *)

type t

val create : unit -> t
(** Empty histogram; a few KB of fixed memory regardless of value range. *)

val linear_limit : int
(** Values strictly below this (64) are recorded exactly; above it they are
    subject to the 1/32 relative quantization error. *)

val record : t -> float -> unit
(** Record one value, in microseconds. Negative values (and [nan]) clamp to
    0; fractional values round to the nearest integer microsecond; values
    at or above [max_int] (including [infinity]) clamp to the top bucket —
    [record] never raises, whatever float it is handed. *)

val count : t -> int
(** Number of recorded values. *)

val min_value : t -> float
(** Smallest recorded value, exact; 0 on an empty histogram. *)

val max_value : t -> float
(** Largest recorded value, exact; 0 on an empty histogram. *)

val mean : t -> float
(** Exact arithmetic mean of recorded values; 0 on an empty histogram. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0, 100]: nearest-rank quantile over the
    recorded distribution, reported as the representative value of the
    bucket containing that rank (exact below {!linear_limit}, bucket
    midpoint above — within the 1/32 error bound), clamped into
    [[min_value, max_value]] so no reported quantile falls outside the
    observed range. [percentile t 0] is {!min_value}; 0 on an empty
    histogram.
    @raise Invalid_argument if [p] is outside [0, 100]. *)

val pp : Format.formatter -> t -> unit
(** ["p50=... p90=... p99=... max=... (n=...)"], times in microseconds;
    ["(empty)"] when nothing was recorded. *)
