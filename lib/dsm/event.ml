open Objmodel
open Txn

type t =
  | Lock_request of { oid : Oid.t; family : Txn_id.t; node : int; mode : Lock.mode }
  | Lock_grant of { oid : Oid.t; family : Txn_id.t; node : int; mode : Lock.mode }
  | Lock_refused of { oid : Oid.t; family : Txn_id.t; node : int; busy : bool }
  | Upgrade of { oid : Oid.t; family : Txn_id.t; node : int }
  | Deadlock_abort of { family : Txn_id.t; node : int; cycle : int }
  | Lease_granted of { oid : Oid.t; node : int; epoch : int }
  | Lease_hit of { oid : Oid.t; family : Txn_id.t; node : int }
  | Lease_recall of { oid : Oid.t; node : int; nodes : int; epoch : int }
  | Lease_deferred of { oid : Oid.t; node : int; readers : int }
  | Lease_yield of { oid : Oid.t; node : int }
  | Lease_recall_cleared of { oid : Oid.t; node : int }
  | Lease_expired of { oid : Oid.t; node : int }
  | Lease_abort of { family : Txn_id.t; node : int; oid : Oid.t option }
  | Transfer of { oid : Oid.t; node : int; pages : int; bytes : int }
  | Demand_fetch of { oid : Oid.t; node : int; pages : int; bytes : int }
  | Root_begin of { family : Txn_id.t; node : int; oid : Oid.t; attempt : int }
  | Root_commit of { family : Txn_id.t; node : int; released : int }
  | Root_abort of { family : Txn_id.t; node : int }
  | Precommit of { txn : Txn_id.t; parent : Txn_id.t; node : int }
  | Sub_abort of { txn : Txn_id.t; node : int }
  | Recursion_reject of { family : Txn_id.t; oid : Oid.t }
  | Retransmit of { mid : int; src : int; dst : int; attempt : int; abandoned : bool }
  | Fault of { fault : Sim.Fault.event; src : int; dst : int }
  | Node_crash of { node : int; incarnation : int }
  | Node_restart of { node : int; incarnation : int }
  | Crash_abort of { family : Txn_id.t; node : int }
  | Node_suspected of { node : int; by : int }
  | Node_dead of { node : int; incarnation : int; by : int }
  | Node_readmitted of { node : int; incarnation : int }
  | Node_parked of { node : int; parked : bool }
  | Reclaim of { node : int; families : int; repointed : int }
  | Failover of { home : int; successor : int }
  | Failback of { home : int }
  | Ack_piggyback of { src : int; dst : int; acks : int }
  | Ack_flush of { src : int; dst : int; acks : int }
  | Fetch_aggregated of { oid : Oid.t; node : int; pages : int; extra : int }
  | Release_coalesced of { node : int; home : int; families : int }
  | Heartbeat_suppressed of { src : int; dst : int }
  | Cache_hit of { oid : Oid.t; family : Txn_id.t; node : int; pages : int }
  | Cache_fill of { oid : Oid.t; node : int; pages : int }
  | Cache_invalidate of { oid : Oid.t option; node : int; entries : int }
  | Ship_decision of {
      oid : Oid.t;
      family : Txn_id.t;
      src : int;
      dst : int;
      shipped : bool;
      saved_bytes : int;
    }
  | Ship_exec of { oid : Oid.t; family : Txn_id.t; node : int }
  | Escrow_reserve of { oid : Oid.t; family : Txn_id.t; node : int; delta : int; admitted : bool }
  | Escrow_local_commit of { oid : Oid.t; family : Txn_id.t; node : int; delta : int }
  | Escrow_delegate of { oid : Oid.t; node : int; up : int; down : int }
  | Escrow_reconcile of { oid : Oid.t; node : int; delta : int; commits : int }
  | Escrow_recall of { oid : Oid.t; node : int; nodes : int; epoch : int }
  | Escrow_yield of { oid : Oid.t; node : int; delta : int }

let category = function
  | Lock_request _ | Lock_grant _ | Lock_refused _ | Upgrade _ -> "lock"
  | Deadlock_abort _ -> "deadlock"
  | Lease_granted _ | Lease_hit _ | Lease_recall _ | Lease_deferred _ | Lease_yield _
  | Lease_recall_cleared _ | Lease_expired _ | Lease_abort _ ->
      "lease"
  | Transfer _ -> "transfer"
  | Demand_fetch _ -> "demand-fetch"
  | Root_begin _ | Root_abort _ | Precommit _ | Sub_abort _ -> "txn"
  | Root_commit _ -> "commit"
  | Recursion_reject _ -> "recursion"
  | Retransmit _ -> "retransmit"
  | Fault _ -> "fault"
  | Node_crash _ | Node_restart _ | Crash_abort _ -> "crash"
  | Node_suspected _ | Node_dead _ -> "suspect"
  | Node_readmitted _ | Node_parked _ -> "membership"
  | Reclaim _ -> "reclaim"
  | Failover _ | Failback _ -> "failover"
  | Ack_piggyback _ | Ack_flush _ | Fetch_aggregated _ | Release_coalesced _
  | Heartbeat_suppressed _ ->
      "batch"
  | Cache_hit _ | Cache_fill _ | Cache_invalidate _ -> "cache"
  | Ship_decision _ | Ship_exec _ -> "ship"
  | Escrow_reserve _ | Escrow_local_commit _ | Escrow_delegate _ | Escrow_reconcile _
  | Escrow_recall _ | Escrow_yield _ ->
      "escrow"

let family = function
  | Lock_request { family; _ }
  | Lock_grant { family; _ }
  | Lock_refused { family; _ }
  | Upgrade { family; _ }
  | Deadlock_abort { family; _ }
  | Lease_hit { family; _ }
  | Lease_abort { family; _ }
  | Root_begin { family; _ }
  | Root_commit { family; _ }
  | Root_abort { family; _ }
  | Recursion_reject { family; _ } ->
      Some family
  | Precommit { txn; _ } | Sub_abort { txn; _ } -> Some txn
  | Crash_abort { family; _ } -> Some family
  | Cache_hit { family; _ } -> Some family
  | Ship_decision { family; _ } | Ship_exec { family; _ } -> Some family
  | Escrow_reserve { family; _ } | Escrow_local_commit { family; _ } -> Some family
  | Escrow_delegate _ | Escrow_reconcile _ | Escrow_recall _ | Escrow_yield _ -> None
  | Lease_granted _ | Lease_recall _ | Lease_deferred _ | Lease_yield _
  | Lease_recall_cleared _ | Lease_expired _ | Transfer _ | Demand_fetch _ | Retransmit _
  | Fault _ | Node_crash _ | Node_restart _ | Node_suspected _ | Node_dead _
  | Node_readmitted _ | Node_parked _ | Reclaim _
  | Failover _ | Failback _ | Ack_piggyback _ | Ack_flush _ | Fetch_aggregated _
  | Release_coalesced _ | Heartbeat_suppressed _ | Cache_fill _ | Cache_invalidate _ ->
      None

let oid = function
  | Lock_request { oid; _ }
  | Lock_grant { oid; _ }
  | Lock_refused { oid; _ }
  | Upgrade { oid; _ }
  | Lease_granted { oid; _ }
  | Lease_hit { oid; _ }
  | Lease_recall { oid; _ }
  | Lease_deferred { oid; _ }
  | Lease_yield { oid; _ }
  | Lease_recall_cleared { oid; _ }
  | Lease_expired { oid; _ }
  | Transfer { oid; _ }
  | Demand_fetch { oid; _ }
  | Root_begin { oid; _ }
  | Recursion_reject { oid; _ } ->
      Some oid
  | Lease_abort { oid; _ } -> oid
  | Fetch_aggregated { oid; _ } -> Some oid
  | Cache_hit { oid; _ } | Cache_fill { oid; _ } -> Some oid
  | Ship_decision { oid; _ } | Ship_exec { oid; _ } -> Some oid
  | Escrow_reserve { oid; _ }
  | Escrow_local_commit { oid; _ }
  | Escrow_delegate { oid; _ }
  | Escrow_reconcile { oid; _ }
  | Escrow_recall { oid; _ }
  | Escrow_yield { oid; _ } ->
      Some oid
  | Cache_invalidate { oid; _ } -> oid
  | Deadlock_abort _ | Root_commit _ | Root_abort _ | Precommit _ | Sub_abort _
  | Retransmit _ | Fault _ | Node_crash _ | Node_restart _ | Crash_abort _
  | Node_suspected _ | Node_dead _ | Node_readmitted _ | Node_parked _ | Reclaim _
  | Failover _ | Failback _ | Ack_piggyback _
  | Ack_flush _ | Release_coalesced _ | Heartbeat_suppressed _ ->
      None

let node = function
  | Lock_request { node; _ }
  | Lock_grant { node; _ }
  | Lock_refused { node; _ }
  | Upgrade { node; _ }
  | Deadlock_abort { node; _ }
  | Lease_granted { node; _ }
  | Lease_hit { node; _ }
  | Lease_recall { node; _ }
  | Lease_deferred { node; _ }
  | Lease_yield { node; _ }
  | Lease_recall_cleared { node; _ }
  | Lease_expired { node; _ }
  | Lease_abort { node; _ }
  | Transfer { node; _ }
  | Demand_fetch { node; _ }
  | Root_begin { node; _ }
  | Root_commit { node; _ }
  | Root_abort { node; _ }
  | Precommit { node; _ }
  | Sub_abort { node; _ } ->
      node
  | Recursion_reject _ -> 0
  | Retransmit { src; _ }
  | Fault { src; _ }
  | Ack_piggyback { src; _ }
  | Ack_flush { src; _ }
  | Heartbeat_suppressed { src; _ } ->
      src
  | Fetch_aggregated { node; _ } | Release_coalesced { node; _ } -> node
  | Cache_hit { node; _ } | Cache_fill { node; _ } | Cache_invalidate { node; _ } -> node
  | Ship_decision { src; _ } -> src
  | Ship_exec { node; _ } -> node
  | Escrow_reserve { node; _ }
  | Escrow_local_commit { node; _ }
  | Escrow_delegate { node; _ }
  | Escrow_reconcile { node; _ }
  | Escrow_recall { node; _ }
  | Escrow_yield { node; _ } ->
      node
  | Node_crash { node; _ }
  | Node_restart { node; _ }
  | Crash_abort { node; _ }
  | Node_suspected { node; _ }
  | Node_dead { node; _ }
  | Node_readmitted { node; _ }
  | Node_parked { node; _ }
  | Reclaim { node; _ } ->
      node
  | Failover { home; _ } | Failback { home } -> home

let pp fmt ev =
  let cat = category ev in
  match ev with
  | Lock_request { oid; family; node; mode } ->
      Format.fprintf fmt "%s: %a requested %a by %a@%d" cat Oid.pp oid Lock.pp mode Txn_id.pp
        family node
  | Lock_grant { oid; family; node; mode } ->
      Format.fprintf fmt "%s: %a granted %a to %a@%d" cat Oid.pp oid Lock.pp mode Txn_id.pp
        family node
  | Lock_refused { oid; family; node; busy } ->
      Format.fprintf fmt "%s: %a refused to %a@%d (%s)" cat Oid.pp oid Txn_id.pp family node
        (if busy then "busy" else "deadlock")
  | Upgrade { oid; family; node } ->
      Format.fprintf fmt "%s: %a upgrade to W by %a@%d" cat Oid.pp oid Txn_id.pp family node
  | Deadlock_abort { family; node; cycle } ->
      Format.fprintf fmt "%s: %a@%d aborts; cycle of %d families" cat Txn_id.pp family node
        cycle
  | Lease_granted { oid; node; epoch } ->
      Format.fprintf fmt "%s: %a leased to node %d at epoch %d" cat Oid.pp oid node epoch
  | Lease_hit { oid; family; node } ->
      Format.fprintf fmt "%s: %a lease hit by %a@%d" cat Oid.pp oid Txn_id.pp family node
  | Lease_recall { oid; nodes; epoch; _ } ->
      Format.fprintf fmt "%s: %a recalling %d lease(s) at epoch %d" cat Oid.pp oid nodes epoch
  | Lease_deferred { oid; node; readers } ->
      Format.fprintf fmt "%s: %a node %d defers yield (%d reader(s))" cat Oid.pp oid node
        readers
  | Lease_yield { oid; node } ->
      Format.fprintf fmt "%s: %a node %d yields" cat Oid.pp oid node
  | Lease_recall_cleared { oid; _ } ->
      Format.fprintf fmt "%s: %a recall cleared" cat Oid.pp oid
  | Lease_expired { oid; _ } ->
      Format.fprintf fmt "%s: %a recall TTL expired, force-clearing" cat Oid.pp oid
  | Lease_abort { family; oid; _ } -> (
      match oid with
      | Some o ->
          Format.fprintf fmt "%s: %a upgrade under dead lease, %a aborts" cat Oid.pp o
            Txn_id.pp family
      | None -> Format.fprintf fmt "%s: root %a fails lease validation" cat Txn_id.pp family)
  | Transfer { oid; node; pages; bytes } ->
      Format.fprintf fmt "%s: %a %d page(s) (%d B) to node %d" cat Oid.pp oid pages bytes node
  | Demand_fetch { oid; node; pages; bytes } ->
      Format.fprintf fmt "%s: %a %d stale page(s) (%d B) at node %d" cat Oid.pp oid pages
        bytes node
  | Root_begin { family; node; oid; attempt } ->
      Format.fprintf fmt "%s: root %a begins on %a@%d (attempt %d)" cat Txn_id.pp family
        Oid.pp oid node attempt
  | Root_commit { family; released; _ } ->
      Format.fprintf fmt "%s: root %a commits, releasing %d object(s)" cat Txn_id.pp family
        released
  | Root_abort { family; node } ->
      Format.fprintf fmt "%s: root %a@%d aborts" cat Txn_id.pp family node
  | Precommit { txn; parent; _ } ->
      Format.fprintf fmt "%s: %a pre-commits into %a" cat Txn_id.pp txn Txn_id.pp parent
  | Sub_abort { txn; _ } ->
      Format.fprintf fmt "%s: %a aborts (sub-transaction)" cat Txn_id.pp txn
  | Recursion_reject { family; oid } ->
      Format.fprintf fmt "%s: root %a rejected: revisits %a" cat Txn_id.pp family Oid.pp oid
  | Retransmit { mid; src; dst; attempt; abandoned } ->
      if abandoned then Format.fprintf fmt "%s: msg %d: %d->%d abandoned" cat mid src dst
      else Format.fprintf fmt "%s: msg %d: %d->%d attempt %d" cat mid src dst attempt
  | Fault { fault; src; dst } ->
      Format.fprintf fmt "%s: %s %d->%d" cat (Sim.Fault.event_to_string fault) src dst
  | Node_crash { node; incarnation } ->
      Format.fprintf fmt "%s: node %d crashes (incarnation %d lost)" cat node incarnation
  | Node_restart { node; incarnation } ->
      Format.fprintf fmt "%s: node %d rejoins as incarnation %d" cat node incarnation
  | Crash_abort { family; node } ->
      Format.fprintf fmt "%s: root %a@%d aborted by crash" cat Txn_id.pp family node
  | Node_suspected { node; by } ->
      Format.fprintf fmt "%s: node %d suspected by node %d" cat node by
  | Node_dead { node; incarnation; by } ->
      Format.fprintf fmt "%s: node %d (incarnation %d) declared dead by node %d" cat node
        incarnation by
  | Node_readmitted { node; incarnation } ->
      Format.fprintf fmt "%s: node %d readmitted as incarnation %d (false declaration)" cat
        node incarnation
  | Node_parked { node; parked } ->
      if parked then
        Format.fprintf fmt "%s: node %d parks (minority side of a partition)" cat node
      else Format.fprintf fmt "%s: node %d unparks (majority reachable again)" cat node
  | Reclaim { node; families; repointed } ->
      Format.fprintf fmt "%s: evicted %d dead famil(ies) of node %d, %d page(s) repointed"
        cat families node repointed
  | Failover { home; successor } ->
      Format.fprintf fmt "%s: node %d takes over as home for partition %d" cat successor home
  | Failback { home } ->
      Format.fprintf fmt "%s: partition %d handed back to its rejoined home" cat home
  | Ack_piggyback { src; dst; acks } ->
      Format.fprintf fmt "%s: %d ack(s) ride %d->%d payload" cat acks src dst
  | Ack_flush { src; dst; acks } ->
      Format.fprintf fmt "%s: flush of %d pending ack(s) %d->%d" cat acks src dst
  | Fetch_aggregated { oid; node; pages; extra } ->
      Format.fprintf fmt "%s: %a fetch widened to %d page(s) (+%d predicted) at node %d" cat
        Oid.pp oid pages extra node
  | Release_coalesced { node; home; families } ->
      Format.fprintf fmt "%s: %d release batch(es) %d->%d combined" cat families node home
  | Heartbeat_suppressed { src; dst } ->
      Format.fprintf fmt "%s: heartbeat %d->%d suppressed by recent traffic" cat src dst
  | Cache_hit { oid; family; node; pages } ->
      Format.fprintf fmt "%s: %a served to %a@%d from cache (%d page read(s) skipped)" cat
        Oid.pp oid Txn_id.pp family node pages
  | Cache_fill { oid; node; pages } ->
      Format.fprintf fmt "%s: %a result cached at node %d (%d page(s))" cat Oid.pp oid node
        pages
  | Cache_invalidate { oid; node; entries } -> (
      match oid with
      | Some o ->
          Format.fprintf fmt "%s: %a invalidated at node %d (%d entr(ies))" cat Oid.pp o node
            entries
      | None ->
          Format.fprintf fmt "%s: node %d cache wiped (%d entr(ies))" cat node entries)
  | Ship_decision { oid; family; src; dst; shipped; saved_bytes } ->
      if shipped then
        Format.fprintf fmt "%s: %a of %a ships %d->%d (~%d B saved)" cat Oid.pp oid Txn_id.pp
          family src dst saved_bytes
      else
        Format.fprintf fmt "%s: %a of %a stays at node %d" cat Oid.pp oid Txn_id.pp family src
  | Ship_exec { oid; family; node } ->
      Format.fprintf fmt "%s: %a of %a executing at home node %d" cat Oid.pp oid Txn_id.pp
        family node
  | Escrow_reserve { oid; family; node; delta; admitted } ->
      if admitted then
        Format.fprintf fmt "%s: %a reserves %+d on %a@%d" cat Oid.pp oid delta Txn_id.pp
          family node
      else
        Format.fprintf fmt "%s: %a reservation %+d refused to %a@%d" cat Oid.pp oid delta
          Txn_id.pp family node
  | Escrow_local_commit { oid; family; node; delta } ->
      Format.fprintf fmt "%s: %a local commit %+d by %a@%d (quota, zero messages)" cat Oid.pp
        oid delta Txn_id.pp family node
  | Escrow_delegate { oid; node; up; down } ->
      Format.fprintf fmt "%s: %a delegates +%d/-%d quota to node %d" cat Oid.pp oid up down
        node
  | Escrow_reconcile { oid; node; delta; commits } ->
      Format.fprintf fmt "%s: %a node %d reconciles %+d (%d local commit(s))" cat Oid.pp oid
        node delta commits
  | Escrow_recall { oid; nodes; epoch; _ } ->
      Format.fprintf fmt "%s: %a recalling quota from %d node(s) at epoch %d" cat Oid.pp oid
        nodes epoch
  | Escrow_yield { oid; node; delta } ->
      Format.fprintf fmt "%s: %a node %d yields quota (final %+d)" cat Oid.pp oid node delta
