(** Exporters over a recorded event trace.

    Two renderings of an [{!Event.t} Sim.Trace.t]'s entries (oldest first,
    as [Sim.Trace.events] returns them):

    - {!timeline}: a human-readable per-transaction timeline — the entries
      mentioning one transaction family, with offsets from the family's
      first event;
    - {!to_chrome}: Chrome trace-event JSON (the format Perfetto and
      [chrome://tracing] load), with one track (thread) per simulated node.
      Paired events — lock request→grant/refusal, lease recall→clear/expiry,
      root begin→commit/abort — become duration ("X") slices; everything
      else becomes an instant event on its node's track.

    A minimal {!validate_json} checker is included so the CLI and CI can
    assert the emitted JSON parses without external dependencies. See
    OBSERVABILITY.md for how to read both outputs. *)

val timeline :
  family:Txn.Txn_id.t -> Event.t Sim.Trace.entry list -> string
(** The entries whose {!Event.family} is [family], one per line, with the
    absolute simulated timestamp and the offset from the family's first
    event. Empty-trace and unknown-family cases yield an explanatory
    single-line string. *)

val to_chrome : node_count:int -> Event.t Sim.Trace.entry list -> string
(** Chrome trace-event JSON: an object with a [traceEvents] array.
    Timestamps are simulated microseconds (the format's native unit);
    [pid] is 0 with per-node [tid]s named by metadata events. Span-opening
    events left unmatched at the end of the trace (e.g. the ring evicted
    the close, or a request was still in flight) degrade to instants. *)

val validate_json : string -> (unit, string) result
(** Strict well-formedness check of one JSON document (objects, arrays,
    strings with escapes, numbers, [true]/[false]/[null]); trailing
    non-whitespace is an error. Not a general-purpose parser — it builds no
    value — but sufficient to gate the Chrome export in tests and CI. *)
