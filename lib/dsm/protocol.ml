type t = Cotec | Otec | Lotec | Rc_nested

let all = [ Cotec; Otec; Lotec; Rc_nested ]

let to_string = function
  | Cotec -> "cotec"
  | Otec -> "otec"
  | Lotec -> "lotec"
  | Rc_nested -> "rc-nested"

let of_string s =
  match String.lowercase_ascii s with
  | "cotec" -> Ok Cotec
  | "otec" -> Ok Otec
  | "lotec" -> Ok Lotec
  | "rc-nested" | "rc" | "rc_nested" -> Ok Rc_nested
  | other -> Error (Printf.sprintf "unknown protocol %S (expected cotec|otec|lotec|rc-nested)" other)

let pp fmt t = Format.pp_print_string fmt (String.uppercase_ascii (to_string t))

let equal a b =
  match (a, b) with
  | Cotec, Cotec | Otec, Otec | Lotec, Lotec | Rc_nested, Rc_nested -> true
  | _ -> false

let is_eager_push = function Rc_nested -> true | Cotec | Otec | Lotec -> false

let transfer_set t ~page_count ~page_nodes ~page_versions ~local_version ~node ~predicted =
  let stale p = local_version p < page_versions.(p) in
  let remote p = page_nodes.(p) <> node in
  let candidates = List.init page_count (fun p -> p) in
  match t with
  | Cotec ->
      (* Whole object, wherever a remote copy is the newest one. *)
      List.filter remote candidates
  | Otec | Rc_nested ->
      (* Only what this site does not already have up to date. *)
      List.filter (fun p -> remote p && stale p) candidates
  | Lotec ->
      let predicted_set = List.sort_uniq Int.compare predicted in
      List.filter (fun p -> remote p && stale p && List.mem p predicted_set) candidates

let demand_fetch_allowed = function Lotec | Rc_nested -> true | Cotec | Otec -> false
