type load_shape =
  | Steady
  | Diurnal of { trough : float }
  | Flash_crowd of { at : float; width : float; boost : float }

type t = {
  seed : int;
  object_count : int;
  min_pages : int;
  max_pages : int;
  root_count : int;
  node_count : int;
  arrival_mean_us : float;
  methods_per_class : int;
  attr_size_bytes : int;
  access_fraction : float;
  access_density : float;
  scatter_probability : float;
  write_fraction : float;
  branch_probability : float;
  branch_taken_probability : float;
  invoke_probability : float;
  max_ref_slots : int;
  read_only_method_fraction : float;
  root_update_fraction : float option;
  access_skew : float;
  load_shape : load_shape;
  commuting_fraction : float;
}

let default =
  {
    seed = 42;
    object_count = 40;
    min_pages = 1;
    max_pages = 5;
    root_count = 100;
    node_count = 8;
    arrival_mean_us = 150.0;
    methods_per_class = 4;
    attr_size_bytes = 256;
    access_fraction = 0.55;
    access_density = 0.9;
    scatter_probability = 0.1;
    write_fraction = 0.4;
    branch_probability = 0.35;
    branch_taken_probability = 0.5;
    invoke_probability = 0.5;
    max_ref_slots = 4;
    read_only_method_fraction = 0.25;
    root_update_fraction = None;
    access_skew = 0.0;
    load_shape = Steady;
    commuting_fraction = 0.0;
  }

let validate t =
  let check cond msg = if cond then Ok () else Error msg in
  let ( let* ) = Result.bind in
  let* () = check (t.object_count > 0) "object_count must be positive" in
  let* () = check (t.min_pages >= 1 && t.max_pages >= t.min_pages) "bad page range" in
  let* () = check (t.root_count >= 0) "root_count must be >= 0" in
  let* () = check (t.node_count > 0) "node_count must be positive" in
  let* () = check (t.arrival_mean_us >= 0.0) "arrival_mean_us must be >= 0" in
  let* () = check (t.methods_per_class > 0) "methods_per_class must be positive" in
  let* () = check (t.attr_size_bytes > 0) "attr_size_bytes must be positive" in
  let frac name v = check (v >= 0.0 && v <= 1.0) (name ^ " must be in [0,1]") in
  let* () = frac "access_fraction" t.access_fraction in
  let* () = frac "access_density" t.access_density in
  let* () = frac "scatter_probability" t.scatter_probability in
  let* () = frac "write_fraction" t.write_fraction in
  let* () = frac "branch_probability" t.branch_probability in
  let* () = frac "branch_taken_probability" t.branch_taken_probability in
  let* () = frac "invoke_probability" t.invoke_probability in
  let* () = frac "read_only_method_fraction" t.read_only_method_fraction in
  let* () = check (t.max_ref_slots >= 0) "max_ref_slots must be >= 0" in
  let* () =
    match t.root_update_fraction with
    | None -> Ok ()
    | Some p ->
        let* () = frac "root_update_fraction" p in
        check (t.methods_per_class >= 2)
          "root_update_fraction needs methods_per_class >= 2 (a writer and a non-writer)"
  in
  let* () = check (t.access_skew >= 0.0) "access_skew must be >= 0" in
  let* () = frac "commuting_fraction" t.commuting_fraction in
  match t.load_shape with
  | Steady -> Ok ()
  | Diurnal { trough } ->
      check (trough > 0.0 && trough <= 1.0) "diurnal trough must be in (0,1]"
  | Flash_crowd { at; width; boost } ->
      let* () = frac "flash-crowd at" at in
      let* () = check (width > 0.0 && width <= 1.0) "flash-crowd width must be in (0,1]" in
      check (boost >= 1.0) "flash-crowd boost must be >= 1"

let pp_load_shape fmt = function
  | Steady -> Format.pp_print_string fmt "steady"
  | Diurnal { trough } -> Format.fprintf fmt "diurnal (trough %.2f)" trough
  | Flash_crowd { at; width; boost } ->
      Format.fprintf fmt "flash crowd (at %.2f, width %.2f, x%.1f)" at width boost

let pp fmt t =
  Format.fprintf fmt
    "@[<v>%d objects x %d-%d pages, %d roots over %d nodes@,\
     access %.0f%%, write %.0f%%, branch %.0f%%, invoke %.0f%%%s (seed %d)"
    t.object_count t.min_pages t.max_pages t.root_count t.node_count
    (t.access_fraction *. 100.) (t.write_fraction *. 100.) (t.branch_probability *. 100.)
    (t.invoke_probability *. 100.)
    (if t.access_skew > 0.0 then Printf.sprintf ", skew %.2f" t.access_skew else "")
    t.seed;
  (match t.root_update_fraction with
  | Some p -> Format.fprintf fmt "@,root updates: %.1f%% of requests" (p *. 100.)
  | None -> ());
  if t.commuting_fraction > 0.0 then
    Format.fprintf fmt "@,commuting methods: %.0f%% of non-writers"
      (t.commuting_fraction *. 100.);
  if t.load_shape <> Steady then
    Format.fprintf fmt "@,load: %a" pp_load_shape t.load_shape;
  Format.fprintf fmt "@]"
