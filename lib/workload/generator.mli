(** Random workload generation: catalog plus root-transaction stream.

    Determinism: the same spec and page size produce exactly the same catalog
    and roots. Every root also carries its own seed, so its branch and
    failure draws are independent of cross-family interleaving — which makes
    byte counts comparable when the same workload runs under different
    protocols.

    Recursion preclusion (paper §3.4): the reference graph is generated as a
    DAG — object [i]'s slots only point to objects with larger identifiers —
    so no invocation chain can revisit an object. *)

type root_spec = {
  at : float;  (** absolute submission time, µs *)
  node : int;
  oid : Objmodel.Oid.t;
  meth : string;
  seed : int;  (** the root's private random stream *)
}

type t = {
  spec : Spec.t;
  catalog : Objmodel.Catalog.t;
  roots : root_spec list;  (** ascending by [at] *)
}

val generate : Spec.t -> page_size:int -> t
(** @raise Invalid_argument on an invalid spec. *)

val method_name : int -> string
(** ["m<i>"] — the naming scheme used for generated methods. *)
