(** Random workload generation: catalog plus root-transaction stream.

    Determinism: the same spec and page size produce exactly the same catalog
    and roots. Every root also carries its own seed, so its branch and
    failure draws are independent of cross-family interleaving — which makes
    byte counts comparable when the same workload runs under different
    protocols.

    Recursion preclusion (paper §3.4): the reference graph is generated as a
    DAG — object [i]'s slots only point to objects with larger identifiers —
    so no invocation chain can revisit an object. *)

type root_spec = {
  at : float;  (** absolute submission time, µs *)
  node : int;
  oid : Objmodel.Oid.t;
  meth : string;
  seed : int;  (** the root's private random stream *)
}

type t = {
  spec : Spec.t;
  catalog : Objmodel.Catalog.t;
  roots : root_spec list;
      (** {b Contract:} ascending by [at] (ties allowed). Consumers rely on
          it — the runtime's streaming feeder submits roots lazily, pulling
          the next one only when the simulation clock reaches it, and the
          experiment runners compute makespans from the last root's [at].
          {!generate} validates the ordering and raises [Invalid_argument]
          naming the offending index if it is ever violated. *)
}

val generate : Spec.t -> page_size:int -> t
(** @raise Invalid_argument on an invalid spec, or if the generated root
    list violates the ascending-by-[at] contract (a generator bug — see
    [roots]). *)

val method_name : int -> string
(** ["m<i>"] — the naming scheme used for generated methods. *)
