(** The paper's evaluation scenarios (§5).

    High contention uses few shared objects (20) under 200 transactions;
    moderate contention spreads the same transaction load over 100 objects.
    Medium objects span 1–5 pages, large objects 10–20 pages (paper Figures
    2–5). *)

type contention = High | Moderate
type size = Medium | Large

val spec : ?seed:int -> ?root_count:int -> contention -> size -> Spec.t

val medium_high : Spec.t
(** Figure 2 *)

val large_high : Spec.t
(** Figure 3 *)

val medium_moderate : Spec.t
(** Figure 4 *)

val large_moderate : Spec.t
(** Figure 5 *)

val name : contention -> size -> string
val all : (string * Spec.t) list
