(** The paper's evaluation scenarios (§5).

    High contention uses few shared objects (20) under 200 transactions;
    moderate contention spreads the same transaction load over 100 objects.
    Medium objects span 1–5 pages, large objects 10–20 pages (paper Figures
    2–5). *)

type contention = High | Moderate
type size = Medium | Large

val spec : ?seed:int -> ?root_count:int -> contention -> size -> Spec.t

val medium_high : Spec.t
(** Figure 2 *)

val large_high : Spec.t
(** Figure 3 *)

val medium_moderate : Spec.t
(** Figure 4 *)

val large_moderate : Spec.t
(** Figure 5 *)

(** {1 Web-serving family}

    Read-heavy traffic against a small hot set — the regime the
    method-result cache ({!Dsm.Method_cache}) targets. Not from the paper;
    used by the [cache] experiment. *)

val web_sessions : Spec.t
(** session-store lookups: tiny hot objects, 3% update requests, no
    nesting *)

val web_catalog : Spec.t
(** catalog browsing: larger linked objects, 5% update requests, strong
    skew *)

val web_diurnal : Spec.t
(** {!web_catalog} under a diurnal arrival-rate swing *)

val web_flash_crowd : Spec.t
(** {!web_catalog} with an 8x flash crowd mid-run *)

(** {1 Escrow bank}

    Hot-account deposits/withdrawals — declared-commutative unit updates
    that serialize on exclusive locks but commute under escrow delta
    locks. Not from the paper; used by the [escrow] experiment. *)

val bank : Spec.t
(** 12 accounts under strong skew, 90% of non-writer methods commuting,
    brisk arrivals — the high-contention regime escrow targets. *)

val name : contention -> size -> string

val all : (string * Spec.t) list
(** every preset, keyed by CLI scenario name (["medium-high"],
    ["web-sessions"], ...) *)
