type contention = High | Moderate
type size = Medium | Large

let spec ?(seed = 42) ?(root_count = 200) contention size =
  let object_count = match contention with High -> 20 | Moderate -> 100 in
  let min_pages, max_pages = match size with Medium -> (1, 5) | Large -> (10, 20) in
  {
    Spec.default with
    Spec.seed;
    object_count;
    min_pages;
    max_pages;
    root_count;
    node_count = 8;
    (* Large objects execute longer; keep arrivals brisk so conflicts stay
       frequent — the paper expressly induces high degrees of conflict. *)
    arrival_mean_us = (match contention with High -> 100.0 | Moderate -> 150.0);
  }

let medium_high = spec High Medium
let large_high = spec High Large
let medium_moderate = spec Moderate Medium
let large_moderate = spec Moderate Large

let name contention size =
  Printf.sprintf "%s-%s"
    (match size with Medium -> "medium" | Large -> "large")
    (match contention with High -> "high" | Moderate -> "moderate")

let all =
  [
    (name High Medium, medium_high);
    (name High Large, large_high);
    (name Moderate Medium, medium_moderate);
    (name Moderate Large, large_moderate);
  ]
