type contention = High | Moderate
type size = Medium | Large

let spec ?(seed = 42) ?(root_count = 200) contention size =
  let object_count = match contention with High -> 20 | Moderate -> 100 in
  let min_pages, max_pages = match size with Medium -> (1, 5) | Large -> (10, 20) in
  {
    Spec.default with
    Spec.seed;
    object_count;
    min_pages;
    max_pages;
    root_count;
    node_count = 8;
    (* Large objects execute longer; keep arrivals brisk so conflicts stay
       frequent — the paper expressly induces high degrees of conflict. *)
    arrival_mean_us = (match contention with High -> 100.0 | Moderate -> 150.0);
  }

let medium_high = spec High Medium
let large_high = spec High Large
let medium_moderate = spec Moderate Medium
let large_moderate = spec Moderate Large

(* Web-serving family: read-heavy traffic against a small hot set — the
   regime a method-result cache on read leases is built for. Methods are
   almost all read-only, writes are rare (content updates, session renewal),
   and access is skewed toward popular objects. *)

let web_sessions =
  (* Session-store lookups: a small hot set of tiny objects, no
     cross-object invocations, a GET-dominated request mix (3% of requests
     hit the writer endpoint), strong popularity skew. All non-writer
     methods are read-only, so [root_update_fraction] alone sets the
     read/write mix. *)
  {
    Spec.default with
    Spec.seed = 47;
    object_count = 8;
    min_pages = 1;
    max_pages = 2;
    root_count = 800;
    node_count = 4;
    arrival_mean_us = 80.0;
    methods_per_class = 4;
    read_only_method_fraction = 1.0;
    root_update_fraction = Some 0.03;
    write_fraction = 0.2;
    invoke_probability = 0.0;
    max_ref_slots = 0;
    access_skew = 1.0;
  }

let web_catalog =
  (* Catalog browsing: larger objects linked into category pages (nested
     invocations reach shared detail objects), 5% update requests, strong
     head-of-catalog skew. *)
  {
    Spec.default with
    Spec.seed = 48;
    object_count = 16;
    min_pages = 2;
    max_pages = 6;
    root_count = 600;
    node_count = 8;
    arrival_mean_us = 100.0;
    methods_per_class = 8;
    read_only_method_fraction = 1.0;
    root_update_fraction = Some 0.05;
    write_fraction = 0.25;
    invoke_probability = 0.15;
    max_ref_slots = 2;
    access_skew = 1.1;
  }

let web_diurnal =
  { web_catalog with Spec.seed = 49; load_shape = Spec.Diurnal { trough = 0.25 } }

let web_flash_crowd =
  {
    web_catalog with
    Spec.seed = 50;
    load_shape = Spec.Flash_crowd { at = 0.5; width = 0.2; boost = 8.0 };
  }

(* Escrow bank: a handful of hot accounts hammered by deposits and
   withdrawals — declared-commutative unit updates that all serialize on
   the account's exclusive lock under the baseline protocols but commute
   under escrow delta locks. The writer m0 keeps a minority of full
   (non-commuting) updates in the mix, so the lock and escrow paths
   interleave on the same objects; strong skew concentrates the fight on
   the head accounts. *)
let bank =
  {
    Spec.default with
    Spec.seed = 51;
    object_count = 12;
    min_pages = 1;
    max_pages = 2;
    root_count = 600;
    node_count = 8;
    arrival_mean_us = 40.0;
    methods_per_class = 4;
    commuting_fraction = 0.95;
    (* The rare non-commuting picks are balance checks (read-only), so the
       only write locks on a hot account come from m0 — write holds are
       what turn escrow refusals into convoys. *)
    read_only_method_fraction = 1.0;
    (* Deposits vastly outnumber statement-batch runs (m0, the full
       writer): with uniform method choice the writer would claim a quarter
       of the traffic and keep the hot accounts exclusively locked, turning
       nearly every escrow reservation into a refusal. *)
    root_update_fraction = Some 0.04;
    invoke_probability = 0.1;
    max_ref_slots = 2;
    access_skew = 1.2;
  }

let name contention size =
  Printf.sprintf "%s-%s"
    (match size with Medium -> "medium" | Large -> "large")
    (match contention with High -> "high" | Moderate -> "moderate")

let all =
  [
    (name High Medium, medium_high);
    (name High Large, large_high);
    (name Moderate Medium, medium_moderate);
    (name Moderate Large, large_moderate);
    ("web-sessions", web_sessions);
    ("web-catalog", web_catalog);
    ("web-diurnal", web_diurnal);
    ("web-flash-crowd", web_flash_crowd);
    ("bank", bank);
  ]
