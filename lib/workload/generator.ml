open Objmodel

type root_spec = { at : float; node : int; oid : Oid.t; meth : string; seed : int }

type t = { spec : Spec.t; catalog : Catalog.t; roots : root_spec list }

let method_name i = Printf.sprintf "m%d" i

(* Statements of one generated method body: a subset of the object's
   attributes is accessed (some behind data-dependent branches, so the
   conservative prediction over-approximates the actual footprint), and some
   reference slots are invoked through (sub-transactions). *)
let gen_method rng (spec : Spec.t) ~attr_count ~slot_count ~name ~read_only =
  let accessed =
    (* A contiguous window of the layout (related fields live together),
       thinned by the access density, plus an occasional scattered access
       elsewhere in the object. *)
    let span =
      max 1 (int_of_float (Float.round (spec.access_fraction *. float_of_int attr_count)))
    in
    let span = min span attr_count in
    let start = Sim.Prng.int rng (attr_count - span + 1) in
    let windowed =
      List.filter
        (fun _a -> Sim.Prng.bernoulli rng spec.access_density)
        (List.init span (fun i -> start + i))
    in
    let windowed = if windowed = [] then [ start ] else windowed in
    if Sim.Prng.bernoulli rng spec.scatter_probability then
      Sim.Prng.int rng attr_count :: windowed
    else windowed
  in
  let access_stmts =
    List.map
      (fun a ->
        let stmt =
          if (not read_only) && Sim.Prng.bernoulli rng spec.write_fraction then
            Method_ir.Write a
          else Method_ir.Read a
        in
        if Sim.Prng.bernoulli rng spec.branch_probability then
          Method_ir.If
            { prob_then = spec.branch_taken_probability; then_ = [ stmt ]; else_ = [] }
        else stmt)
      accessed
  in
  let invoke_stmts =
    List.filter_map
      (fun slot ->
        if Sim.Prng.bernoulli rng spec.invoke_probability then
          Some
            (Method_ir.Invoke
               { slot; meth = method_name (Sim.Prng.int rng spec.methods_per_class) })
        else None)
      (List.init slot_count (fun s -> s))
  in
  let stmts = Array.of_list (access_stmts @ invoke_stmts) in
  Sim.Prng.shuffle rng stmts;
  Method_ir.make ~name ~body:(Array.to_list stmts)

let gen_class rng (spec : Spec.t) ~page_size ~index ~slot_count =
  let pages = Sim.Prng.int_in rng spec.min_pages spec.max_pages in
  let attrs_per_page = max 1 (page_size / spec.attr_size_bytes) in
  let attr_count = pages * attrs_per_page in
  let attrs =
    Array.init attr_count (fun a ->
        Attribute.make ~name:(Printf.sprintf "a%d" a) ~size_bytes:spec.attr_size_bytes)
  in
  let methods =
    List.init spec.methods_per_class (fun m ->
        (* Method m0 always updates, so every class has a writer; others may
           be read-only — or, when the spec asks for them, declared-
           commutative unit updates (deposits/withdrawals). The 0.0 guard
           keeps knob-free specs draw-identical to the pre-knob
           generator. *)
        if
          m > 0
          && spec.commuting_fraction > 0.0
          && Sim.Prng.bernoulli rng spec.commuting_fraction
        then
          let commutativity =
            if m land 1 = 1 then Method_ir.Increment else Method_ir.Decrement
          in
          Method_ir.make_commuting ~name:(method_name m) ~commutativity
            ~body:[ Method_ir.Write 0 ]
        else
          let read_only = m > 0 && Sim.Prng.bernoulli rng spec.read_only_method_fraction in
          gen_method rng spec ~attr_count ~slot_count ~name:(method_name m) ~read_only)
  in
  Obj_class.compile ~page_size
    (Obj_class.define
       ~name:(Printf.sprintf "C%d" index)
       ~attrs ~methods ~ref_slots:slot_count)

let generate spec ~page_size =
  (match Spec.validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Generator.generate: " ^ msg));
  let master = Sim.Prng.create ~seed:spec.Spec.seed in
  let rng_shape = Sim.Prng.split master in
  let rng_methods = Sim.Prng.split master in
  let rng_roots = Sim.Prng.split master in
  let n = spec.Spec.object_count in
  (* Reference DAG: object i points only to higher-numbered objects. *)
  let slots_of =
    Array.init n (fun i ->
        let avail = n - 1 - i in
        if avail = 0 || spec.Spec.max_ref_slots = 0 then [||]
        else begin
          let k = Sim.Prng.int_in rng_shape 0 (min spec.Spec.max_ref_slots avail) in
          let picks = Sim.Prng.sample_without_replacement rng_shape k avail in
          Array.of_list (List.map (fun d -> Oid.of_int (i + 1 + d)) picks)
        end)
  in
  let instances =
    List.init n (fun i ->
        let refs = slots_of.(i) in
        let cls =
          gen_class rng_methods spec ~page_size ~index:i ~slot_count:(Array.length refs)
        in
        { Catalog.oid = Oid.of_int i; cls; refs })
  in
  let catalog = Catalog.create instances in
  (match Catalog.validate_acyclic catalog with
  | Ok () -> ()
  | Error _ -> assert false (* construction guarantees a DAG *));
  (* Root targets: uniform, or Zipf-like when the spec asks for skew. The
     uniform path keeps its original single integer draw so skew-free specs
     generate byte-identical workloads across versions. *)
  let pick_target =
    if spec.Spec.access_skew <= 0.0 then fun () -> Sim.Prng.int rng_roots n
    else begin
      let weights =
        Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) spec.Spec.access_skew)
      in
      let cumulative = Array.make n 0.0 in
      let total =
        Array.fold_left
          (fun acc w -> acc +. w)
          0.0 weights
      in
      let running = ref 0.0 in
      Array.iteri
        (fun i w ->
          running := !running +. w;
          cumulative.(i) <- !running)
        weights;
      fun () ->
        let u = Sim.Prng.float rng_roots total in
        let rec search lo hi =
          if lo >= hi then lo
          else
            let mid = (lo + hi) / 2 in
            if cumulative.(mid) < u then search (mid + 1) hi else search lo mid
        in
        search 0 (n - 1)
    end
  in
  (* Load shaping scales the mean inter-arrival time as a function of the
     root's phase x = r / (root_count - 1) in [0,1]. [Steady] returns
     [arrival_mean_us] itself (not a computed copy), so steady specs
     generate byte-identical arrival times across versions. *)
  let shaped_mean r =
    match spec.Spec.load_shape with
    | Spec.Steady -> spec.Spec.arrival_mean_us
    | shape ->
        let x = float_of_int r /. float_of_int (max 1 (spec.Spec.root_count - 1)) in
        let rate_scale =
          match shape with
          | Spec.Steady -> 1.0
          | Spec.Diurnal { trough } ->
              (* Cosine day: full rate at the start/end, [trough] of it at
                 midday. *)
              trough +. ((1.0 -. trough) *. 0.5 *. (1.0 +. cos (2.0 *. Float.pi *. x)))
          | Spec.Flash_crowd { at; width; boost } ->
              if Float.abs (x -. at) <= width /. 2.0 then boost else 1.0
        in
        spec.Spec.arrival_mean_us /. rate_scale
  in
  let roots =
    (* Built with explicit in-order recursion, not [List.init]: the list
       must be ascending by [at] (the .mli contract), and the clock is a
       side effect — [List.init] switches to a reverse-evaluation
       tail-recursive scheme above ~10k elements, which silently handed
       the *last* root the *first* arrival time at exactly the scales the
       scale experiment runs. *)
    let clock = ref 0.0 in
    let rec build r acc =
      if r >= spec.Spec.root_count then List.rev acc
      else begin
        clock := !clock +. Sim.Prng.exponential rng_roots ~mean:(shaped_mean r);
        let pick_method () =
          (* [None] keeps the original single uniform draw, so specs without
             the knob generate byte-identical roots across versions. *)
          match spec.Spec.root_update_fraction with
          | None -> Sim.Prng.int rng_roots spec.Spec.methods_per_class
          | Some p ->
              if Sim.Prng.bernoulli rng_roots p then 0 (* m0: the class's writer *)
              else 1 + Sim.Prng.int rng_roots (spec.Spec.methods_per_class - 1)
        in
        let root =
          {
            at = !clock;
            node = r mod spec.Spec.node_count;
            oid = Oid.of_int (pick_target ());
            meth = method_name (pick_method ());
            seed = (spec.Spec.seed * 1_000_003) + (r * 7919) + 17;
          }
        in
        build (r + 1) (root :: acc)
      end
    in
    build 0 []
  in
  (* Enforce the .mli arrival-order contract before anyone consumes the
     list: the runtime's streaming feeder submits roots lazily and trusts
     ascending [at] (see PR 6), so an out-of-order list must fail here, at
     the source, with a message naming the offending index. *)
  let _ =
    List.fold_left
      (fun (i, prev) root ->
        if root.at < prev then
          invalid_arg
            (Printf.sprintf
               "Generator.generate: root %d arrives at %.3f, before root %d at %.3f — \
                roots must be ascending by [at]"
               i root.at (i - 1) prev);
        (i + 1, root.at))
      (0, Float.neg_infinity) roots
  in
  { spec; catalog; roots }
