(** Workload parameters for randomly generated nested object transactions.

    These are the knobs the paper varies: "the number of objects, the size of
    the objects (in units of pages) and the number of transactions in order
    to achieve a range of conflict scenarios" (§5). The rest shapes method
    bodies so that methods access only a subset of an object's pages and
    update only a subset of what they access — the property LOTEC exploits. *)

type t = {
  seed : int;
  object_count : int;
  min_pages : int;  (** object size lower bound, in pages *)
  max_pages : int;
  root_count : int;  (** transactions submitted *)
  node_count : int;  (** must match the runtime's cluster size *)
  arrival_mean_us : float;  (** mean exponential inter-arrival time of roots *)
  methods_per_class : int;
  attr_size_bytes : int;  (** attribute granularity *)
  access_fraction : float;
      (** fraction of an object's attributes covered by a method's access
          window — methods touch a {e contiguous} region of the layout, as
          real methods touch related fields, so predictions cover a strict
          subset of the object's pages *)
  access_density : float;  (** chance each attribute inside the window is accessed *)
  scatter_probability : float;  (** chance of one extra access outside the window *)
  write_fraction : float;  (** fraction of touched attributes that are written *)
  branch_probability : float;  (** chance an access sits behind a data-dependent If *)
  branch_taken_probability : float;  (** runtime chance the If executes its access *)
  invoke_probability : float;  (** per reference slot, chance a method invokes through it *)
  max_ref_slots : int;  (** outgoing references per object (DAG edges) *)
  read_only_method_fraction : float;
  access_skew : float;
      (** Zipf-like skew of root-transaction targets: 0 = uniform over
          objects (the default); larger values concentrate load on
          low-numbered objects with weight 1/(rank+1)^skew — the uneven
          per-object traffic visible in the paper's figures. *)
}

val default : t
(** A medium-contention baseline; scenario presets override it. *)

val validate : t -> (unit, string) result
val pp : Format.formatter -> t -> unit
