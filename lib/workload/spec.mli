(** Workload parameters for randomly generated nested object transactions.

    These are the knobs the paper varies: "the number of objects, the size of
    the objects (in units of pages) and the number of transactions in order
    to achieve a range of conflict scenarios" (§5). The rest shapes method
    bodies so that methods access only a subset of an object's pages and
    update only a subset of what they access — the property LOTEC exploits. *)

type load_shape =
  | Steady  (** constant mean inter-arrival time (the default) *)
  | Diurnal of { trough : float }
      (** a full cosine day over the root sequence: arrival rate swings
          between the peak (the spec's [arrival_mean_us]) and
          [trough * peak]; [trough] in (0,1] *)
  | Flash_crowd of { at : float; width : float; boost : float }
      (** a burst centred at fraction [at] of the root sequence, covering
          [width] of it, during which the arrival rate is multiplied by
          [boost] ([>= 1]) — a news spike hitting a web site *)

type t = {
  seed : int;
  object_count : int;
  min_pages : int;  (** object size lower bound, in pages *)
  max_pages : int;
  root_count : int;  (** transactions submitted *)
  node_count : int;  (** must match the runtime's cluster size *)
  arrival_mean_us : float;  (** mean exponential inter-arrival time of roots *)
  methods_per_class : int;
  attr_size_bytes : int;  (** attribute granularity *)
  access_fraction : float;
      (** fraction of an object's attributes covered by a method's access
          window — methods touch a {e contiguous} region of the layout, as
          real methods touch related fields, so predictions cover a strict
          subset of the object's pages *)
  access_density : float;  (** chance each attribute inside the window is accessed *)
  scatter_probability : float;  (** chance of one extra access outside the window *)
  write_fraction : float;  (** fraction of touched attributes that are written *)
  branch_probability : float;  (** chance an access sits behind a data-dependent If *)
  branch_taken_probability : float;  (** runtime chance the If executes its access *)
  invoke_probability : float;  (** per reference slot, chance a method invokes through it *)
  max_ref_slots : int;  (** outgoing references per object (DAG edges) *)
  read_only_method_fraction : float;
  root_update_fraction : float option;
      (** request-level read/write mix for root transactions. [None] (the
          default): roots pick a method uniformly — byte-identical to the
          pre-knob generator, but the always-writer method [m0] then claims
          [1/methods_per_class] of the traffic no matter how read-only the
          catalog is. [Some p]: a root invokes the writer [m0] with
          probability [p] and otherwise picks uniformly among
          [m1..m(k-1)] — how web traffic actually splits (a GET-dominated
          endpoint with a rare POST). Requires [methods_per_class >= 2].
          Only root selection changes; nested invocations are whatever the
          generated method bodies contain. *)
  access_skew : float;
      (** Zipf-like skew of root-transaction targets: 0 = uniform over
          objects (the default); larger values concentrate load on
          low-numbered objects with weight 1/(rank+1)^skew — the uneven
          per-object traffic visible in the paper's figures. *)
  load_shape : load_shape;
      (** how the root arrival rate varies over the run; {!Steady} (the
          default) keeps generated workloads byte-identical to the
          pre-shape generator. *)
  commuting_fraction : float;
      (** per non-writer method, chance it is a declared-commutative unit
          update (alternating [Increment]/[Decrement] by method index, body
          one write, no nesting) instead of a generated body — the
          deposits/withdrawals the escrow commit path accelerates. [0.0]
          (the default) draws nothing extra, so existing specs generate
          byte-identical workloads. *)
}

val default : t
(** A medium-contention baseline; scenario presets override it. *)

val validate : t -> (unit, string) result
val pp : Format.formatter -> t -> unit
val pp_load_shape : Format.formatter -> load_shape -> unit
