# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench figures examples chaos lease clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

figures:
	dune exec bin/lotec_sim.exe -- figures

chaos:
	dune exec bin/lotec_sim.exe -- chaos

lease:
	dune exec bin/lotec_sim.exe -- lease

examples:
	dune exec examples/quickstart.exe
	dune exec examples/bank.exe
	dune exec examples/cad_assembly.exe
	dune exec examples/network_sweep.exe
	dune exec examples/recursion_policy.exe

clean:
	dune clean
