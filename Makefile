# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench figures examples chaos crash-chaos partition partition-smoke lease cache cache-smoke batch scale scale-smoke ship ship-smoke escrow escrow-smoke determinism check-links doc clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

figures:
	dune exec bin/lotec_sim.exe -- figures

chaos:
	dune exec bin/lotec_sim.exe -- chaos

# Crash-recovery sweep: fail-stop crash windows x protocols x GDO replica
# counts; asserts every root commits or permanently aborts, the wire ledger
# reconciles exactly and the run never stalls.
crash-chaos:
	dune exec bin/lotec_sim.exe -- chaos --crash

lease:
	dune exec bin/lotec_sim.exe -- lease

# Method-result cache sweep: baseline vs lease-only vs lease+cache on the
# web-serving workload; every case asserts serializability and exact wire
# ledger reconciliation. Writes BENCH_cache.json.
cache:
	dune exec bin/lotec_sim.exe -- cache --json BENCH_cache.json

# CI gate: the cached LOTEC rows must reach a 50% hit rate and a 5x total
# message reduction (vs everything-off) at a >= 0.95 request read share.
cache-smoke:
	dune exec bin/lotec_sim.exe -- cache -p lotec \
		--assert-min-hit-rate 0.5 --assert-min-message-factor 5 \
		--json BENCH_cache.json

# Message-combining sweep: protocols x batching policy under light loss;
# asserts the wire ledger reconciles exactly with riders included and that
# a batching-off run records zero combining activity.
batch:
	dune exec bin/lotec_sim.exe -- batch --json BENCH_batch.json

# Scale sweep: engine micro-benchmarks plus the default 100k/300k/1M-root
# streaming runs across all four protocols. Writes BENCH_engine.json.
scale:
	dune exec bin/lotec_sim.exe -- scale --engine-bench --json BENCH_engine.json

# Small fixed point for CI: 10k roots over 64 nodes per protocol, with a
# conservative events/sec floor (measured ~0.6-1.2M on dev hardware; the
# floor leaves ~10x headroom for slow CI runners) and a heap ceiling.
scale-smoke:
	dune exec bin/lotec_sim.exe -- scale --roots 10000 --nodes 64 \
		--assert-min-events-per-sec 100000 --assert-max-heap-mb 512 \
		--json BENCH_engine.json

# Function-shipping sweep: every protocol x locality skew x software cost,
# each case run with shipping off (the data-ship baseline) and on; every
# case asserts serializability and exact wire ledger reconciliation
# (Ship_invoke/Ship_reply rows included). Writes BENCH_ship.json.
ship:
	dune exec bin/lotec_sim.exe -- ship --json BENCH_ship.json

# CI gate: on the skewed workload at the cheapest messaging, LOTEC with
# shipping must move >= 30% fewer bytes than its data-ship baseline with
# completion no worse than +2%.
ship-smoke:
	dune exec bin/lotec_sim.exe -- ship -p lotec --skew 1.5 --software-cost 20 \
		--assert-min-bytes-reduction 30 --assert-max-time-ratio 1.02 \
		--json BENCH_ship.json

# Escrow-commit sweep: every protocol x Zipf skew on the bank workload,
# each case run with exclusive locking (baseline) and escrow delta locks;
# every case asserts serializability, bounded escrow-ledger replay and
# exact wire ledger reconciliation. Writes BENCH_escrow.json.
escrow:
	dune exec bin/lotec_sim.exe -- escrow --json BENCH_escrow.json

# CI gate: on the hottest-skew bank workload, LOTEC with escrow must cut
# completion time by >= 25% vs its exclusive-locking baseline.
escrow-smoke:
	dune exec bin/lotec_sim.exe -- escrow -p lotec --skew 1.2 \
		--assert-min-time-reduction 25 \
		--json BENCH_escrow.json

# Re-run the deterministic goldens with OCaml's randomized hashing turned
# on (OCAMLRUNPARAM=R): any Hashtbl-iteration-order leak into dumps,
# traces or metrics shows up as a golden mismatch.
determinism:
	OCAMLRUNPARAM=R dune exec test/determinism/main.exe

# Partition / gray-failure nemesis: partition, one-way-cut and slow-link
# schedules x protocols x replica counts against the quorum membership
# protocol. Every case asserts no split-brain (directory + acting-home
# audit), exact wire reconciliation, and — on the false-suspicion
# schedules — a forced false declaration followed by message-driven
# readmission. Writes BENCH_partition.json.
partition:
	dune exec bin/lotec_sim.exe -- partition --json BENCH_partition.json

# CI gate: the two forced-false-declaration schedules on LOTEC, both
# replica settings. The sweep exits nonzero on any violated invariant.
partition-smoke:
	dune exec bin/lotec_sim.exe -- partition -p lotec \
		--schedule minority-iso --schedule false-suspicion \
		--json BENCH_partition.json

# Fail on intra-repo markdown links pointing at missing files or at
# anchors that no heading generates. CI runs this next to the doc build.
check-links:
	./tools/check_md_links.sh

# API docs. odoc warnings are fatal (root dune env stanza), so a broken
# {!reference} fails the build — CI runs this; locally it skips gracefully
# when odoc is not installed.
doc:
	@if command -v odoc >/dev/null 2>&1; then \
		dune build @doc && echo "docs at _build/default/_doc/_html/index.html"; \
	else \
		echo "odoc not installed; skipping doc build (opam install odoc)"; \
	fi

examples:
	dune exec examples/quickstart.exe
	dune exec examples/bank.exe
	dune exec examples/cad_assembly.exe
	dune exec examples/network_sweep.exe
	dune exec examples/recursion_policy.exe

clean:
	dune clean
