(* Cmdliner-based driver for the LOTEC simulator.

   Subcommands:
     run         — one scenario under one protocol (rich config flags)
     figure      — regenerate one paper figure (2-8), optionally as a chart
     figures     — regenerate figures 2-8 + the headline ratio table
     ratios      — the section-5 headline byte-reduction table
     ablation    — RC-nested, prefetch, per-class, GDO-replication and
                   active-message ablations
     granularity — lock overhead vs object granularity (section 5.1)
     sweep       — object count / object size / transaction count sweeps
     throughput  — per-protocol throughput + LOTEC cluster scaling
     trace       — run with protocol-event tracing and print the tail
     chaos       — fault-rate sweep asserting the protocol invariants
     lease       — read-lease policy sweep vs the leases-off baseline
     cache       — method-result cache sweep on the web-serving scenarios
     batch       — message-combining sweep vs the batching-off baseline
     ship        — function-shipping sweep vs the always-data-ship baseline
     escrow      — escrow-commit sweep vs the exclusive-locking baseline
     scale       — large-run sweep (streaming metrics) + engine micro-bench *)

open Cmdliner

let protocol_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Dsm.Protocol.of_string s) in
  let print fmt p = Dsm.Protocol.pp fmt p in
  Arg.conv (parse, print)

let scenario_conv =
  let parse s =
    match List.assoc_opt (String.lowercase_ascii s) Workload.Scenarios.all with
    | Some spec -> Ok spec
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown scenario %S (expected one of: %s)" s
                (String.concat ", " (List.map fst Workload.Scenarios.all))))
  in
  let print fmt spec = Workload.Spec.pp fmt spec in
  Arg.conv (parse, print)

let scenario_arg =
  let doc =
    "Workload scenario: medium-high, large-high, medium-moderate, large-moderate, \
     web-sessions, web-catalog, web-diurnal or web-flash-crowd."
  in
  Arg.(value & opt scenario_conv Workload.Scenarios.medium_high & info [ "scenario" ] ~doc)

let protocol_arg =
  let doc = "Consistency protocol: cotec, otec, lotec or rc-nested." in
  Arg.(value & opt protocol_conv Dsm.Protocol.Lotec & info [ "protocol"; "p" ] ~doc)

let seed_arg =
  let doc = "Override the workload seed." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~doc)

let roots_arg =
  let doc = "Override the number of root transactions." in
  Arg.(value & opt (some int) None & info [ "roots" ] ~doc)

let apply_overrides spec seed roots =
  let spec = match seed with Some s -> { spec with Workload.Spec.seed = s } | None -> spec in
  match roots with Some r -> { spec with Workload.Spec.root_count = r } | None -> spec

let recovery_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Txn.Recovery.strategy_of_string s) in
  let print fmt s = Format.pp_print_string fmt (Txn.Recovery.strategy_to_string s) in
  Arg.conv (parse, print)

(* Read-lease policy (shared by run and lease). *)
let lease_policy_arg =
  let doc = "Read-lease policy: off, ttl or adaptive." in
  Arg.(value & opt string "off" & info [ "lease-policy" ] ~doc)

let lease_ttl_arg =
  let doc = "Lease TTL in simulated microseconds (with --lease-policy ttl|adaptive)." in
  Arg.(value & opt (some float) None & info [ "lease-ttl-us" ] ~doc)

let lease_ratio_arg =
  let doc = "Minimum observed read ratio for adaptive leasing, in [0,1]." in
  Arg.(value & opt (some float) None & info [ "lease-min-read-ratio" ] ~doc)

let lease_samples_arg =
  let doc = "Global acquires observed before adaptive leasing may start." in
  Arg.(value & opt (some int) None & info [ "lease-min-samples" ] ~doc)

(* Build a policy from the flags: the string picks the shape, the optional
   numeric flags override that shape's parameters. *)
let lease_policy ~policy ~ttl ~ratio ~samples =
  match Gdo.Lease.policy_of_string policy with
  | Error e ->
      prerr_endline e;
      exit 2
  | Ok p -> (
      let or_else o d = Option.value o ~default:d in
      match p with
      | Gdo.Lease.Off -> Gdo.Lease.Off
      | Gdo.Lease.Fixed_ttl { ttl_us } ->
          Gdo.Lease.Fixed_ttl { ttl_us = or_else ttl ttl_us }
      | Gdo.Lease.Adaptive { ttl_us; min_read_ratio; min_samples } ->
          Gdo.Lease.Adaptive
            {
              ttl_us = or_else ttl ttl_us;
              min_read_ratio = or_else ratio min_read_ratio;
              min_samples = or_else samples min_samples;
            })

(* Method-result cache policy (shared by run and cache). *)
let cache_arg =
  let doc =
    "Method-result cache policy: off, lru or lru:CAPACITY. Requires an enabled lease \
     policy (the lease is the cache's invalidation signal)."
  in
  Arg.(value & opt string "off" & info [ "cache" ] ~doc)

let cache_capacity_arg =
  let doc = "Per-node cache capacity in entries (with --cache lru)." in
  Arg.(value & opt (some int) None & info [ "cache-capacity" ] ~doc)

(* Build a policy from the flags: the string picks the shape, the optional
   capacity flag overrides that shape's parameter. *)
let cache_policy ~policy ~capacity =
  match Dsm.Method_cache.policy_of_string policy with
  | Error e ->
      prerr_endline e;
      exit 2
  | Ok Dsm.Method_cache.Off -> Dsm.Method_cache.Off
  | Ok (Dsm.Method_cache.Lru { capacity = c }) ->
      Dsm.Method_cache.Lru { capacity = Option.value capacity ~default:c }

(* Message-combining policy (shared by run and batch). *)
let batching_arg =
  let doc = "Message-combining policy: off or all." in
  Arg.(value & opt string "off" & info [ "batching" ] ~doc)

let batch_ack_flush_arg =
  let doc = "Deferred-ack flush timer in microseconds (with --batching all)." in
  Arg.(value & opt (some float) None & info [ "batch-ack-flush-us" ] ~doc)

let batch_ack_rider_arg =
  let doc = "Bytes one piggybacked ack adds to its carrier message." in
  Arg.(value & opt (some int) None & info [ "batch-ack-rider-bytes" ] ~doc)

let batch_release_flush_arg =
  let doc = "Release-coalescing window in microseconds (0 combines same-instant commits)." in
  Arg.(value & opt (some float) None & info [ "batch-release-flush-us" ] ~doc)

(* Build a policy from the flags: the string picks the shape, the optional
   numeric flags override that shape's parameters. *)
let batching_policy ~policy ~ack_flush ~ack_rider ~release_flush =
  match Dsm.Batching.of_string policy with
  | Error e ->
      prerr_endline e;
      exit 2
  | Ok p ->
      let or_else o d = Option.value o ~default:d in
      {
        p with
        Dsm.Batching.ack_flush_us = or_else ack_flush p.Dsm.Batching.ack_flush_us;
        ack_rider_bytes = or_else ack_rider p.Dsm.Batching.ack_rider_bytes;
        release_flush_us = or_else release_flush p.Dsm.Batching.release_flush_us;
      }

(* Function shipping (the ship subcommand sweeps its own parameter grid). *)
let shipping_arg =
  let doc = "Function-shipping policy: off, on, or on:<software-us>." in
  Arg.(value & opt string "off" & info [ "shipping" ] ~doc)

(* Escrow commit (the escrow subcommand sweeps its own parameter grid). *)
let escrow_arg =
  let doc = "Escrow-commit policy: off, on, or on:<local-quota>." in
  Arg.(value & opt string "off" & info [ "escrow" ] ~doc)

let escrow_policy ~policy =
  match Dsm.Escrow.policy_of_string policy with
  | Error e ->
      prerr_endline e;
      exit 2
  | Ok p -> p

let shipping_policy ~policy =
  match Dsm.Shipping.policy_of_string policy with
  | Error e ->
      prerr_endline e;
      exit 2
  | Ok p -> p

(* Interconnect fault injection (shared by run and chaos). *)
let fault_drop_arg =
  let doc = "Per-message drop probability in [0,1]." in
  Arg.(value & opt float 0.0 & info [ "fault-drop" ] ~doc)

let fault_duplicate_arg =
  let doc = "Per-message duplication probability in [0,1]." in
  Arg.(value & opt float 0.0 & info [ "fault-duplicate" ] ~doc)

let fault_jitter_arg =
  let doc = "Max extra delivery delay in microseconds (uniform in [0, jitter])." in
  Arg.(value & opt float 0.0 & info [ "fault-jitter-us" ] ~doc)

let fault_seed_arg =
  let doc = "Seed of the fault injector's PRNG (independent of the workload seed)." in
  Arg.(value & opt int 1 & info [ "fault-seed" ] ~doc)

let timeout_arg =
  let doc = "Retransmit timer for unacknowledged messages, in microseconds." in
  Arg.(
    value
    & opt float Core.Config.default.Core.Config.request_timeout_us
    & info [ "request-timeout-us" ] ~doc)

let retransmits_arg =
  let doc = "Retransmissions of one message before the transport gives up." in
  Arg.(
    value
    & opt int Core.Config.default.Core.Config.max_retransmits
    & info [ "max-retransmits" ] ~doc)

(* Crash windows: "NODE:FROM_US:UNTIL_US" (shared by run and chaos). *)
let crash_window_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ n; f; u ] -> (
        try Ok (int_of_string n, float_of_string f, float_of_string u)
        with Failure _ -> Error (`Msg ("bad crash window " ^ s)))
    | _ -> Error (`Msg ("expected NODE:FROM_US:UNTIL_US, got " ^ s))
  in
  let print fmt (n, f, u) = Format.fprintf fmt "%d:%g:%g" n f u in
  Arg.conv (parse, print)

let crash_windows_arg =
  let doc =
    "Fail-stop crash-restart window as NODE:FROM_US:UNTIL_US (repeatable). The node loses \
     its volatile state at FROM_US and rejoins with a fresh incarnation at UNTIL_US."
  in
  Arg.(value & opt_all crash_window_conv [] & info [ "crash-window" ] ~docv:"N:F:U" ~doc)

(* Partition windows: "N[,N...]:FROM_US:UNTIL_US" — the listed nodes form one
   side of the split; messages crossing the boundary are lost both ways. *)
let partition_window_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ g; f; u ] -> (
        try
          let group = List.map int_of_string (String.split_on_char ',' g) in
          Ok (group, float_of_string f, float_of_string u)
        with Failure _ -> Error (`Msg ("bad partition window " ^ s)))
    | _ -> Error (`Msg ("expected NODES:FROM_US:UNTIL_US, got " ^ s))
  in
  let print fmt (g, f, u) =
    Format.fprintf fmt "%s:%g:%g" (String.concat "," (List.map string_of_int g)) f u
  in
  Arg.conv (parse, print)

let partition_windows_arg =
  let doc =
    "Network partition window as NODES:FROM_US:UNTIL_US where NODES is a comma-separated \
     group forming one side of the split (repeatable). Messages crossing the boundary are \
     lost in both directions; the partition heals at UNTIL_US."
  in
  Arg.(
    value & opt_all partition_window_conv [] & info [ "partition-window" ] ~docv:"G:F:U" ~doc)

(* Slow links: "SRC>DST:EXTRA_US:FROM_US:UNTIL_US" (gray failure). *)
let slow_link_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ sd; e; f; u ] -> (
        match String.split_on_char '>' sd with
        | [ src; dst ] -> (
            try
              Ok
                ( int_of_string src,
                  int_of_string dst,
                  float_of_string e,
                  float_of_string f,
                  float_of_string u )
            with Failure _ -> Error (`Msg ("bad slow link " ^ s)))
        | _ -> Error (`Msg ("expected SRC>DST:EXTRA_US:FROM_US:UNTIL_US, got " ^ s)))
    | _ -> Error (`Msg ("expected SRC>DST:EXTRA_US:FROM_US:UNTIL_US, got " ^ s))
  in
  let print fmt (s, d, e, f, u) = Format.fprintf fmt "%d>%d:%g:%g:%g" s d e f u in
  Arg.conv (parse, print)

let slow_links_arg =
  let doc =
    "Gray-failure window as SRC>DST:EXTRA_US:FROM_US:UNTIL_US (repeatable): messages from \
     SRC to DST incur EXTRA_US additional latency during the window but are delivered."
  in
  Arg.(value & opt_all slow_link_conv [] & info [ "slow-link" ] ~docv:"S>D:E:F:U" ~doc)

let gdo_replicas_arg =
  let doc =
    "GDO replication factor: with crash windows, a crashed home's partition fails over to \
     its first live ring successor; 0 leaves it unavailable until the restart."
  in
  Arg.(
    value
    & opt int Core.Config.default.Core.Config.gdo_replicas
    & info [ "gdo-replicas" ] ~doc)

let dump_directory_arg =
  let doc = "Print the GDO dump (non-free entries) after the run, and on a stall." in
  Arg.(value & flag & info [ "dump-directory" ] ~doc)

let fault_config ~drop ~duplicate ~jitter ~fault_seed ~crash_windows ~partition_windows
    ~slow_links =
  if
    drop = 0.0 && duplicate = 0.0 && jitter = 0.0 && crash_windows = []
    && partition_windows = [] && slow_links = []
  then None
  else
    (* Any non-default value gets a config, even an out-of-range one, so it
       reaches Config.validate instead of being silently ignored. *)
    Some
      {
        Sim.Fault.seed = fault_seed;
        drop_probability = drop;
        duplicate_probability = duplicate;
        delay_jitter_us = jitter;
        windows =
          List.map
            (fun (n, f, u) ->
              {
                Sim.Fault.w_node = n;
                w_kind = Sim.Fault.Crash;
                w_from_us = f;
                w_until_us = u;
              })
            crash_windows;
        link_windows =
          List.map
            (fun (g, f, u) ->
              {
                Sim.Fault.lw_kind = Sim.Fault.Partition g;
                lw_from_us = f;
                lw_until_us = u;
              })
            partition_windows
          @ List.map
              (fun (s, d, e, f, u) ->
                {
                  Sim.Fault.lw_kind =
                    Sim.Fault.Slow { slow_src = s; slow_dst = d; extra_us = e };
                  lw_from_us = f;
                  lw_until_us = u;
                })
              slow_links;
      }

(* Shared by run (via the --trace- flags) and the trace subcommand. *)
let write_chrome_trace ~node_count tr file =
  let json = Dsm.Trace_export.to_chrome ~node_count (Sim.Trace.events tr) in
  (match Dsm.Trace_export.validate_json json with
  | Ok () -> ()
  | Error e ->
      Format.eprintf "internal error: chrome export is not valid JSON: %s@." e;
      exit 1);
  let oc = open_out file in
  output_string oc json;
  close_out oc;
  Format.printf "wrote %s (%d events, load in Perfetto or chrome://tracing)@." file
    (Sim.Trace.length tr)

let print_trace_tail tr n =
  if Sim.Trace.dropped tr > 0 then
    Format.printf "(%d early events dropped by the ring)@." (Sim.Trace.dropped tr);
  Format.printf "last %d event(s):@." (min n (Sim.Trace.length tr));
  List.iter
    (fun e -> Format.printf "%a@." (Sim.Trace.pp_entry Dsm.Event.pp) e)
    (Sim.Trace.latest tr n)

let run_cmd =
  let objects_arg =
    let doc = "Override the number of shared objects." in
    Arg.(value & opt (some int) None & info [ "objects" ] ~doc)
  in
  let skew_arg =
    let doc = "Zipf-like access skew over root targets (0 = uniform; default: the scenario's)." in
    Arg.(value & opt (some float) None & info [ "skew" ] ~doc)
  in
  let abort_arg =
    let doc = "Injected sub-transaction failure probability in [0,1]." in
    Arg.(value & opt float 0.0 & info [ "abort-probability" ] ~doc)
  in
  let prefetch_arg =
    let doc = "Enable optimistic pre-acquisition of sub-invocation locks." in
    Arg.(value & flag & info [ "prefetch" ] ~doc)
  in
  let cpu_arg =
    let doc = "Serialise statement execution on one CPU per node." in
    Arg.(value & flag & info [ "cpu-limited" ] ~doc)
  in
  let recovery_arg =
    let doc = "Local UNDO mechanism: undo or shadow." in
    Arg.(value & opt recovery_conv Txn.Recovery.Undo_logging & info [ "recovery" ] ~doc)
  in
  let trace_capacity_arg =
    let doc = "Retain the last $(docv) protocol events (0 disables tracing)." in
    Arg.(value & opt int 0 & info [ "trace-capacity" ] ~docv:"N" ~doc)
  in
  let trace_tail_arg =
    let doc = "Print the last $(docv) traced events (needs --trace-capacity)." in
    Arg.(value & opt int 0 & info [ "trace-tail" ] ~docv:"N" ~doc)
  in
  let trace_chrome_arg =
    let doc = "Write the trace as Chrome trace-event JSON to $(docv) (needs --trace-capacity)." in
    Arg.(value & opt (some string) None & info [ "trace-chrome" ] ~docv:"FILE" ~doc)
  in
  let profile_arg =
    let doc =
      "Print an engine profile after the run: wall clock, events dispatched and events/sec, \
       peak queue depth, allocation and peak heap."
    in
    Arg.(value & flag & info [ "profile" ] ~doc)
  in
  let action spec protocol seed roots objects skew abort_probability prefetch cpu_limited
      recovery drop duplicate jitter fault_seed crash_windows partition_windows slow_links
      gdo_replicas dump_directory
      request_timeout_us max_retransmits policy ttl ratio samples cache cache_capacity
      batching ack_flush ack_rider release_flush shipping escrow trace_capacity trace_tail
      trace_chrome profile =
    let spec = apply_overrides spec seed roots in
    let spec =
      match objects with
      | Some n -> { spec with Workload.Spec.object_count = n }
      | None -> spec
    in
    let spec =
      match skew with
      | Some s -> { spec with Workload.Spec.access_skew = s }
      | None -> spec
    in
    let config =
      {
        Core.Config.default with
        Core.Config.abort_probability;
        prefetch;
        cpu_limited;
        recovery;
        faults =
          fault_config ~drop ~duplicate ~jitter ~fault_seed ~crash_windows
            ~partition_windows ~slow_links;
        gdo_replicas;
        request_timeout_us;
        max_retransmits;
        lease = lease_policy ~policy ~ttl ~ratio ~samples;
        method_cache = cache_policy ~policy:cache ~capacity:cache_capacity;
        batching = batching_policy ~policy:batching ~ack_flush ~ack_rider ~release_flush;
        shipping = shipping_policy ~policy:shipping;
        escrow = escrow_policy ~policy:escrow;
        trace_capacity;
      }
    in
    (match Core.Config.validate config with
    | Ok () -> ()
    | Error msg ->
        prerr_endline msg;
        exit 2);
    let wl = Workload.Generator.generate spec ~page_size:config.Core.Config.page_size in
    Format.printf "workload: %a@.@." Workload.Spec.pp spec;
    let dump_gdo rt =
      print_string "-- directory (non-free entries) --\n";
      print_string (Gdo.Directory.dump (Core.Runtime.directory rt))
    in
    let on_stall = if dump_directory then Some dump_gdo else None in
    let run, prof =
      if profile then
        let run, p =
          Experiments.Scale.profiled (fun () ->
              let run = Experiments.Runner.execute ~config ?on_stall ~protocol wl in
              (run, Core.Runtime.engine run.Experiments.Runner.runtime))
        in
        (run, Some p)
      else (Experiments.Runner.execute ~config ?on_stall ~protocol wl, None)
    in
    Format.printf "== %a ==@.%a@." Dsm.Protocol.pp protocol Dsm.Metrics.pp_summary
      (Experiments.Runner.metrics run);
    Option.iter (fun p -> Format.printf "@.%a@." Experiments.Scale.pp_profile p) prof;
    if dump_directory then dump_gdo run.Experiments.Runner.runtime;
    match Core.Runtime.trace run.Experiments.Runner.runtime with
    | None ->
        if trace_tail > 0 || trace_chrome <> None then
          prerr_endline "pass --trace-capacity N to enable tracing"
    | Some tr ->
        if trace_tail > 0 then begin
          Format.printf "@.";
          print_trace_tail tr trace_tail
        end;
        Option.iter
          (write_chrome_trace ~node_count:config.Core.Config.node_count tr)
          trace_chrome
  in
  let term =
    Term.(
      const action $ scenario_arg $ protocol_arg $ seed_arg $ roots_arg $ objects_arg
      $ skew_arg $ abort_arg $ prefetch_arg $ cpu_arg $ recovery_arg $ fault_drop_arg
      $ fault_duplicate_arg $ fault_jitter_arg $ fault_seed_arg $ crash_windows_arg
      $ partition_windows_arg $ slow_links_arg
      $ gdo_replicas_arg $ dump_directory_arg $ timeout_arg $ retransmits_arg
      $ lease_policy_arg $ lease_ttl_arg $ lease_ratio_arg $ lease_samples_arg
      $ cache_arg $ cache_capacity_arg
      $ batching_arg $ batch_ack_flush_arg $ batch_ack_rider_arg $ batch_release_flush_arg
      $ shipping_arg $ escrow_arg $ trace_capacity_arg $ trace_tail_arg $ trace_chrome_arg
      $ profile_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one scenario under one protocol.") term

let figure_result n =
  match n with
  | 2 -> `Bytes (Experiments.Fig_bytes.figure2 ())
  | 3 -> `Bytes (Experiments.Fig_bytes.figure3 ())
  | 4 -> `Bytes (Experiments.Fig_bytes.figure4 ())
  | 5 -> `Bytes (Experiments.Fig_bytes.figure5 ())
  | 6 -> `Time (Experiments.Fig_time.figure6 (Experiments.Fig_bytes.figure2 ()))
  | 7 -> `Time (Experiments.Fig_time.figure7 (Experiments.Fig_bytes.figure2 ()))
  | 8 -> `Time (Experiments.Fig_time.figure8 (Experiments.Fig_bytes.figure2 ()))
  | _ -> invalid_arg "figure number must be 2-8"

let figure_cmd =
  let n_arg =
    let doc = "Figure number (2-8)." in
    Arg.(required & pos 0 (some int) None & info [] ~docv:"N" ~doc)
  in
  let chart_arg =
    let doc = "Render byte figures as an ASCII bar chart (paper style)." in
    Arg.(value & flag & info [ "chart" ] ~doc)
  in
  let action n chart =
    if n < 2 || n > 8 then prerr_endline "figure number must be between 2 and 8"
    else
      match figure_result n with
      | `Bytes fb ->
          if chart then Format.printf "%a@." (Experiments.Fig_bytes.pp_chart ?objects:None) fb
          else Format.printf "%a@." Experiments.Fig_bytes.pp fb
      | `Time ft -> Format.printf "%a@." Experiments.Fig_time.pp ft
  in
  let term = Term.(const action $ n_arg $ chart_arg) in
  Cmd.v (Cmd.info "figure" ~doc:"Regenerate one paper figure (2-8).") term

let figures_cmd =
  let action () =
    let figures, summary = Experiments.Summary.run_all () in
    List.iter (fun fb -> Format.printf "%a@." Experiments.Fig_bytes.pp fb) figures;
    let fig2 = List.hd figures in
    Format.printf "%a@." Experiments.Fig_time.pp (Experiments.Fig_time.figure6 fig2);
    Format.printf "%a@." Experiments.Fig_time.pp (Experiments.Fig_time.figure7 fig2);
    Format.printf "%a@." Experiments.Fig_time.pp (Experiments.Fig_time.figure8 fig2);
    Format.printf "headline ratios (paper: OTEC -20..25%% vs COTEC; LOTEC -5..10%% vs OTEC)@.%a@."
      Experiments.Summary.pp summary
  in
  let term = Term.(const action $ const ()) in
  Cmd.v (Cmd.info "figures" ~doc:"Regenerate every figure and the headline ratio table.") term

let ratios_cmd =
  let action () =
    let _, summary = Experiments.Summary.run_all () in
    Format.printf "%a@." Experiments.Summary.pp summary
  in
  let term = Term.(const action $ const ()) in
  Cmd.v (Cmd.info "ratios" ~doc:"Print the headline byte-reduction ratios (paper §5).") term

let ablation_cmd =
  let action () =
    Format.printf "%a@." Experiments.Ablation.pp (Experiments.Ablation.rc_comparison ());
    Format.printf "%a@." Experiments.Ablation.pp (Experiments.Ablation.prefetch_comparison ());
    Format.printf "%a@." Experiments.Ablation.pp (Experiments.Ablation.per_class_comparison ());
    Format.printf "%a@." Experiments.Ablation.pp (Experiments.Ablation.replication_comparison ());
    Format.printf "%a@." Experiments.Active_messages.pp (Experiments.Active_messages.run ())
  in
  let term = Term.(const action $ const ()) in
  Cmd.v (Cmd.info "ablation" ~doc:"Run the RC-nested and prefetch ablations.") term

let granularity_cmd =
  let pages_arg =
    let doc = "Total shared pages (must be divisible by every granularity)." in
    Arg.(value & opt int 96 & info [ "pages" ] ~doc)
  in
  let roots_g_arg =
    let doc = "Root transactions." in
    Arg.(value & opt int 120 & info [ "roots" ] ~doc)
  in
  let action total_pages root_count =
    Format.printf "%a@." Experiments.Granularity.pp
      (Experiments.Granularity.run ~total_pages ~root_count ())
  in
  let term = Term.(const action $ pages_arg $ roots_g_arg) in
  Cmd.v
    (Cmd.info "granularity"
       ~doc:"Locking overhead vs object granularity (paper section 5.1).")
    term

let throughput_cmd =
  let action () =
    Format.printf "%a@." Experiments.Throughput.pp (Experiments.Throughput.protocols ());
    Format.printf "%a@." Experiments.Throughput.pp (Experiments.Throughput.scaling ())
  in
  let term = Term.(const action $ const ()) in
  Cmd.v
    (Cmd.info "throughput" ~doc:"Throughput/latency per protocol and LOTEC cluster scaling.")
    term

let sweep_cmd =
  let action () =
    List.iter
      (fun r -> Format.printf "%a@." Experiments.Sweep.pp r)
      (Experiments.Sweep.run_all ())
  in
  let term = Term.(const action $ const ()) in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Sweep object count, object size and transaction count (paper section 5).")
    term

let chaos_cmd =
  let rates_conv =
    (* "drop:dup:jitter", e.g. "0.1:0.1:50". *)
    let parse s =
      match String.split_on_char ':' s with
      | [ d; p; j ] -> (
          try Ok (float_of_string d, float_of_string p, float_of_string j)
          with Failure _ -> Error (`Msg ("bad rate triple " ^ s)))
      | _ -> Error (`Msg ("expected DROP:DUP:JITTER, got " ^ s))
    in
    let print fmt (d, p, j) = Format.fprintf fmt "%g:%g:%g" d p j in
    Arg.conv (parse, print)
  in
  let rates_arg =
    let doc =
      "Fault-rate point as DROP:DUP:JITTER_US (repeatable); default sweeps 0 to 0.2."
    in
    Arg.(value & opt_all rates_conv [] & info [ "rate" ] ~doc)
  in
  let seeds_arg =
    let doc = "Fault-injector seed (repeatable)." in
    Arg.(value & opt_all int [] & info [ "fault-seed" ] ~doc)
  in
  let crash_arg =
    let doc =
      "Run the crash-recovery sweep (default crash windows, replicas 0 and 1) instead of \
       the fault-rate sweep; --crash-window overrides the windows."
    in
    Arg.(value & flag & info [ "crash" ] ~doc)
  in
  let action seed roots rates seeds crash crash_windows gdo_replicas dump_directory
      request_timeout_us max_retransmits =
    let spec =
      apply_overrides Experiments.Chaos.default_spec seed roots
    in
    if crash || crash_windows <> [] then begin
      (* Crash-recovery mode: crash windows x protocols x replica counts,
         asserting the recovery invariants (every root commits or
         permanently aborts, exact wire-ledger reconciliation, no stall). *)
      let windows = if crash_windows = [] then None else Some [ crash_windows ] in
      let replicas = if crash_windows = [] then None else Some [ gdo_replicas ] in
      let fault_seeds = if seeds = [] then None else Some seeds in
      let outcomes =
        Experiments.Chaos.crash_sweep ~spec ?windows ?replicas ?fault_seeds
          ~dump_stalls:dump_directory ()
      in
      Format.printf "workload: %a@.@." Workload.Spec.pp spec;
      Format.printf "%a@." Experiments.Chaos.pp_crash_report outcomes
    end
    else begin
      let config =
        { Core.Config.default with Core.Config.request_timeout_us; max_retransmits }
      in
      let rates = if rates = [] then None else Some rates in
      let fault_seeds = if seeds = [] then None else Some seeds in
      let outcomes = Experiments.Chaos.sweep ~config ~spec ?rates ?fault_seeds () in
      Format.printf "workload: %a@.@." Workload.Spec.pp spec;
      Format.printf "%a@." Experiments.Chaos.pp_report outcomes
    end
  in
  let term =
    Term.(
      const action $ seed_arg $ roots_arg $ rates_arg $ seeds_arg $ crash_arg
      $ crash_windows_arg $ gdo_replicas_arg $ dump_directory_arg $ timeout_arg
      $ retransmits_arg)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Sweep interconnect fault rates x seeds x protocols and assert the protocol \
          invariants (serializability, root accounting, ledger balance) hold; with --crash \
          or --crash-window, sweep fail-stop crash-restart windows through the recovery \
          subsystem instead.")
    term

let partition_cmd =
  let protocols_arg =
    let doc = "Protocol to sweep (repeatable); default COTEC, OTEC and LOTEC." in
    Arg.(value & opt_all protocol_conv [] & info [ "protocol"; "p" ] ~doc)
  in
  let replicas_arg =
    let doc = "GDO replication factor to sweep (repeatable); default 0 and 1." in
    Arg.(value & opt_all int [] & info [ "replicas" ] ~doc)
  in
  let seeds_arg =
    let doc = "Fault-injector seed (repeatable)." in
    Arg.(value & opt_all int [] & info [ "fault-seed" ] ~doc)
  in
  let schedule_arg =
    let doc =
      "Nemesis schedule to run (repeatable): minority-iso, even-split, one-way, slow-link \
       or false-suspicion; default all five (plus the leased fence scenario on replicated \
       columns)."
    in
    Arg.(value & opt_all string [] & info [ "schedule" ] ~docv:"NAME" ~doc)
  in
  let json_arg =
    let doc = "Also write the sweep as a JSON array to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let action seed roots protocols replicas seeds schedules json dump_directory =
    let spec = apply_overrides Experiments.Partition.default_spec seed roots in
    let protocols = if protocols = [] then None else Some protocols in
    let replicas = if replicas = [] then None else Some replicas in
    let fault_seeds = if seeds = [] then None else Some seeds in
    let schedules =
      match schedules with
      | [] -> None
      | names ->
          Some
            (List.map
               (fun name ->
                 match
                   List.find_opt
                     (fun (s : Experiments.Partition.schedule) ->
                       s.Experiments.Partition.sched_name = name)
                     Experiments.Partition.default_schedules
                 with
                 | Some s -> s
                 | None -> failwith ("unknown schedule " ^ name))
               names)
    in
    (* Every invariant — root accounting, wire-ledger reconciliation,
       split-brain audit, forced false declaration + readmission — is
       asserted inside the sweep; a violation raises and exits nonzero. *)
    let outcomes =
      Experiments.Partition.sweep ~spec ?schedules ?protocols ?replicas ?fault_seeds
        ~dump_stalls:dump_directory ()
    in
    Format.printf "workload: %a@.@." Workload.Spec.pp spec;
    Format.printf "%a@." Experiments.Partition.pp_report outcomes;
    match json with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Experiments.Partition.to_json outcomes);
        close_out oc;
        Format.printf "wrote %s@." file
  in
  let term =
    Term.(
      const action $ seed_arg $ roots_arg $ protocols_arg $ replicas_arg $ seeds_arg
      $ schedule_arg $ json_arg $ dump_directory_arg)
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:
         "Run the partition / gray-failure nemesis: scheduled partitions, one-way cuts and \
          slow links x protocols x replica counts against the quorum membership protocol, \
          asserting no split-brain (directory + acting-home audit), exact wire \
          reconciliation, and message-driven readmission after a forced false declaration.")
    term

let lease_cmd =
  let fractions_arg =
    let doc = "Read-only method fraction to sweep (repeatable); default 0.5 0.8 0.95." in
    Arg.(value & opt_all float [] & info [ "read-fraction" ] ~doc)
  in
  let protocols_arg =
    let doc = "Protocol to sweep (repeatable); default all four." in
    Arg.(value & opt_all protocol_conv [] & info [ "protocol"; "p" ] ~doc)
  in
  let json_arg =
    let doc = "Also write the sweep as a JSON array to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let action seed roots fractions protocols policy ttl ratio samples json =
    let spec = apply_overrides Experiments.Lease.default_spec seed roots in
    let policies =
      (* Default sweep compares both built-in policies; an explicit
         --lease-policy narrows it to that one (off is always the baseline). *)
      match policy with
      | "off" -> None
      | p -> Some [ lease_policy ~policy:p ~ttl ~ratio ~samples ]
    in
    let read_fractions = if fractions = [] then None else Some fractions in
    let protocols = if protocols = [] then None else Some protocols in
    let outcomes =
      Experiments.Lease.sweep ~spec ?protocols ?read_fractions ?policies ()
    in
    Format.printf "workload: %a@.@." Workload.Spec.pp spec;
    Format.printf "%a@." Experiments.Lease.pp_report outcomes;
    match json with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Experiments.Lease.to_json outcomes);
        close_out oc;
        Format.printf "wrote %s@." file
  in
  let term =
    Term.(
      const action $ seed_arg $ roots_arg $ fractions_arg $ protocols_arg $ lease_policy_arg
      $ lease_ttl_arg $ lease_ratio_arg $ lease_samples_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "lease"
       ~doc:
         "Sweep read-lease policies x read fractions x protocols and report home-node lock \
          operations, lease traffic and completion time against the leases-off baseline.")
    term

let cache_cmd =
  let scenario_cache_arg =
    let doc = "Web-serving scenario to sweep (default web-sessions)." in
    Arg.(
      value
      & opt scenario_conv Workload.Scenarios.web_sessions
      & info [ "scenario" ] ~doc)
  in
  let fractions_arg =
    let doc = "Request-level read share to sweep (repeatable); default 0.8 0.95 0.99." in
    Arg.(value & opt_all float [] & info [ "read-fraction" ] ~doc)
  in
  let protocols_arg =
    let doc = "Protocol to sweep (repeatable); default all four." in
    Arg.(value & opt_all protocol_conv [] & info [ "protocol"; "p" ] ~doc)
  in
  let json_arg =
    let doc = "Also write the sweep as a JSON array to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let min_hit_rate_arg =
    let doc =
      "Fail (exit 1) if the best cache hit rate of any cached LOTEC row is below $(docv) \
       (in [0,1])."
    in
    Arg.(value & opt (some float) None & info [ "assert-min-hit-rate" ] ~docv:"R" ~doc)
  in
  let min_factor_arg =
    let doc =
      "Fail (exit 1) if the best message-reduction factor of any cached LOTEC row at read \
       share >= 0.95 is below $(docv)."
    in
    Arg.(
      value & opt (some float) None & info [ "assert-min-message-factor" ] ~docv:"X" ~doc)
  in
  let action spec seed roots fractions protocols cache cache_capacity ttl json min_hit_rate
      min_factor =
    let spec = apply_overrides spec seed roots in
    let policies =
      match cache_policy ~policy:cache ~capacity:cache_capacity with
      | Dsm.Method_cache.Off -> None (* default LRU; Baseline/Lease_only always run *)
      | p -> Some [ p ]
    in
    let lease = Option.map (fun ttl_us -> Gdo.Lease.Fixed_ttl { ttl_us }) ttl in
    let read_fractions = if fractions = [] then None else Some fractions in
    let protocols = if protocols = [] then None else Some protocols in
    let outcomes =
      Experiments.Method_cache.sweep ?lease ~spec ?protocols ?read_fractions ?policies ()
    in
    Format.printf "workload: %a@.@." Workload.Spec.pp spec;
    Format.printf "%a@." Experiments.Method_cache.pp_report outcomes;
    (match json with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Experiments.Method_cache.to_json outcomes);
        close_out oc;
        Format.printf "wrote %s@." file);
    (* CI gates: evaluated over the cached LOTEC rows of this sweep. *)
    let cached_lotec =
      List.filter
        (fun (o : Experiments.Method_cache.outcome) ->
          o.Experiments.Method_cache.case.Experiments.Method_cache.protocol
          = Dsm.Protocol.Lotec
          &&
          match o.Experiments.Method_cache.case.Experiments.Method_cache.mode with
          | Experiments.Method_cache.Cached _ -> true
          | _ -> false)
        outcomes
    in
    let failures = ref 0 in
    let check cond msg = if not cond then (incr failures; prerr_endline ("FAIL: " ^ msg)) in
    Option.iter
      (fun floor ->
        let best =
          List.fold_left
            (fun acc o -> Float.max acc (Experiments.Method_cache.hit_rate o))
            0.0 cached_lotec
        in
        check (best >= floor)
          (Printf.sprintf "best cached-LOTEC hit rate %.2f below the %.2f floor" best floor))
      min_hit_rate;
    Option.iter
      (fun floor ->
        let best =
          List.fold_left
            (fun acc (o : Experiments.Method_cache.outcome) ->
              if o.Experiments.Method_cache.case.Experiments.Method_cache.read_fraction >= 0.95
              then
                match Experiments.Method_cache.baseline_of outcomes o with
                | Some b ->
                    Float.max acc (Experiments.Method_cache.message_factor ~baseline:b ~on:o)
                | None -> acc
              else acc)
            0.0 cached_lotec
        in
        check (best >= floor)
          (Printf.sprintf
             "best cached-LOTEC message reduction %.1fx (read >= 0.95) below the %.1fx floor"
             best floor))
      min_factor;
    if !failures > 0 then exit 1
  in
  let term =
    Term.(
      const action $ scenario_cache_arg $ seed_arg $ roots_arg $ fractions_arg
      $ protocols_arg $ cache_arg $ cache_capacity_arg $ lease_ttl_arg $ json_arg
      $ min_hit_rate_arg $ min_factor_arg)
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Sweep the method-result cache x protocols x request-level read shares on a \
          web-serving scenario, against lease-only and everything-off baselines; report \
          message reduction, hit rate and invalidation traffic, optionally asserting CI \
          floors on the cached LOTEC rows.")
    term

let ship_cmd =
  let protocols_arg =
    let doc = "Protocol to sweep (repeatable); default all four." in
    Arg.(value & opt_all protocol_conv [] & info [ "protocol"; "p" ] ~doc)
  in
  let skews_arg =
    let doc = "Locality skew to sweep (repeatable); default 0 and 1.5." in
    Arg.(value & opt_all float [] & info [ "skew" ] ~doc)
  in
  let costs_arg =
    let doc =
      "Per-message software cost in microseconds to sweep (repeatable); sets both the link \
       and the cost model's sigma. Default 20 and 60."
    in
    Arg.(value & opt_all float [] & info [ "software-cost" ] ~doc)
  in
  let min_pages_arg =
    let doc = "Cost-model floor: never ship below this many stale remote pages." in
    Arg.(value & opt (some int) None & info [ "ship-min-pages" ] ~doc)
  in
  let json_arg =
    let doc = "Also write the sweep as a JSON array to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let min_reduction_arg =
    let doc =
      "Fail (exit 1) unless the headline row (LOTEC, skewed workload, cheapest messaging) \
       moves at least $(docv) percent fewer bytes than its data-ship baseline."
    in
    Arg.(value & opt (some float) None & info [ "assert-min-bytes-reduction" ] ~docv:"PCT" ~doc)
  in
  let max_ratio_arg =
    let doc =
      "Fail (exit 1) if the headline row's completion time exceeds $(docv) times its \
       data-ship baseline."
    in
    Arg.(value & opt (some float) None & info [ "assert-max-time-ratio" ] ~docv:"R" ~doc)
  in
  let action seed roots protocols skews costs min_pages json min_reduction max_ratio =
    let spec_of_skew skew =
      apply_overrides (Experiments.Function_shipping.default_spec ~skew) seed roots
    in
    let params =
      match min_pages with
      | None -> Experiments.Function_shipping.default_params
      | Some m ->
          {
            Experiments.Function_shipping.default_params with
            Dsm.Shipping.min_remote_pages = m;
          }
    in
    let protocols = if protocols = [] then None else Some protocols in
    let skews = if skews = [] then None else Some skews in
    let software_costs = if costs = [] then None else Some costs in
    let outcomes =
      Experiments.Function_shipping.sweep ~spec_of_skew ~params ?protocols ?skews
        ?software_costs ()
    in
    Format.printf "workload (skewed axis): %a@.@." Workload.Spec.pp (spec_of_skew 1.5);
    Format.printf "%a@." Experiments.Function_shipping.pp_report outcomes;
    (match json with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Experiments.Function_shipping.to_json outcomes);
        close_out oc;
        Format.printf "wrote %s@." file);
    let failures = ref 0 in
    let check cond msg = if not cond then (incr failures; prerr_endline ("FAIL: " ^ msg)) in
    (if min_reduction <> None || max_ratio <> None then
       match Experiments.Function_shipping.headline outcomes with
       | None -> check false "no headline row (LOTEC shipping at positive skew) in the sweep"
       | Some (_, _, reduction, ratio) ->
           Option.iter
             (fun floor ->
               check (reduction >= floor)
                 (Printf.sprintf "headline byte reduction %.1f%% below the %.1f%% floor"
                    reduction floor))
             min_reduction;
           Option.iter
             (fun ceiling ->
               check (ratio <= ceiling)
                 (Printf.sprintf "headline time ratio %.3f above the %.3f ceiling" ratio
                    ceiling))
             max_ratio);
    if !failures > 0 then exit 1
  in
  let term =
    Term.(
      const action $ seed_arg $ roots_arg $ protocols_arg $ skews_arg $ costs_arg
      $ min_pages_arg $ json_arg $ min_reduction_arg $ max_ratio_arg)
  in
  Cmd.v
    (Cmd.info "ship"
       ~doc:
         "Sweep function shipping x protocols x locality skews x software costs on the \
          locality-skewed nesting workload, against the always-data-ship baseline; report \
          byte/message reduction and ship-decision counters, optionally asserting CI floors \
          on the headline LOTEC row.")
    term

let escrow_cmd =
  let protocols_arg =
    let doc = "Protocol to sweep (repeatable); default all four." in
    Arg.(value & opt_all protocol_conv [] & info [ "protocol"; "p" ] ~doc)
  in
  let skews_arg =
    let doc = "Access skew to sweep (repeatable); default 0.6 and 1.2." in
    Arg.(value & opt_all float [] & info [ "skew" ] ~doc)
  in
  let quota_arg =
    let doc = "Delegated local quota per (node, object, side); 0 disables the fast path." in
    Arg.(value & opt (some int) None & info [ "quota" ] ~doc)
  in
  let reconcile_arg =
    let doc = "Local commits between lazy reconcile pushes to the home." in
    Arg.(value & opt (some int) None & info [ "reconcile-every" ] ~doc)
  in
  let json_arg =
    let doc = "Also write the sweep as a JSON array to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let min_reduction_arg =
    let doc =
      "Fail (exit 1) unless the headline row (LOTEC with escrow at the hottest skew) \
       completes at least $(docv) percent faster than its exclusive-locking baseline."
    in
    Arg.(value & opt (some float) None & info [ "assert-min-time-reduction" ] ~docv:"PCT" ~doc)
  in
  let action seed roots protocols skews quota reconcile json min_reduction =
    let spec_of_skew skew =
      apply_overrides (Experiments.Escrow.default_spec ~skew) seed roots
    in
    let params =
      let p = Experiments.Escrow.default_params in
      let p =
        match quota with None -> p | Some q -> { p with Dsm.Escrow.local_quota = q }
      in
      match reconcile with None -> p | Some r -> { p with Dsm.Escrow.reconcile_every = r }
    in
    let protocols = if protocols = [] then None else Some protocols in
    let skews = if skews = [] then None else Some skews in
    let outcomes = Experiments.Escrow.sweep ~spec_of_skew ~params ?protocols ?skews () in
    Format.printf "workload (hottest axis): %a@.@." Workload.Spec.pp (spec_of_skew 1.2);
    Format.printf "%a@." Experiments.Escrow.pp_report outcomes;
    (match json with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Experiments.Escrow.to_json outcomes);
        close_out oc;
        Format.printf "wrote %s@." file);
    let failures = ref 0 in
    let check cond msg = if not cond then (incr failures; prerr_endline ("FAIL: " ^ msg)) in
    Option.iter
      (fun floor ->
        match Experiments.Escrow.headline outcomes with
        | None -> check false "no headline row (LOTEC with escrow) in the sweep"
        | Some (_, _, ratio) ->
            let reduction = 100.0 *. (1.0 -. ratio) in
            check (reduction >= floor)
              (Printf.sprintf "headline completion reduction %.1f%% below the %.1f%% floor"
                 reduction floor))
      min_reduction;
    if !failures > 0 then exit 1
  in
  let term =
    Term.(
      const action $ seed_arg $ roots_arg $ protocols_arg $ skews_arg $ quota_arg
      $ reconcile_arg $ json_arg $ min_reduction_arg)
  in
  Cmd.v
    (Cmd.info "escrow"
       ~doc:
         "Sweep escrow commit x protocols x access skews on the hot-account bank workload, \
          against the exclusive-locking baseline; report reservation/fast-path/recall \
          counters and completion times, optionally asserting a CI floor on the headline \
          LOTEC row.")
    term

let batch_cmd =
  let protocols_arg =
    let doc = "Protocol to sweep (repeatable); default otec and lotec." in
    Arg.(value & opt_all protocol_conv [] & info [ "protocol"; "p" ] ~doc)
  in
  let json_arg =
    let doc = "Also write the sweep as a JSON array to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let action seed roots protocols drop duplicate jitter fault_seed policy ack_flush ack_rider
      release_flush json =
    let spec = apply_overrides Experiments.Batching.default_spec seed roots in
    let faults =
      (* The default sweep injects light loss on purpose (acks only exist on
         a lossy interconnect); explicit --fault-* flags override it. *)
      if drop = 0.0 && duplicate = 0.0 && jitter = 0.0 then
        Some Experiments.Batching.default_faults
      else
        fault_config ~drop ~duplicate ~jitter ~fault_seed ~crash_windows:[]
          ~partition_windows:[] ~slow_links:[]
    in
    let policies =
      (* Off is always the baseline; an explicit policy flag replaces the
         default "all" comparison point. *)
      match policy with
      | "off" -> Dsm.Batching.[ off; all ]
      | p -> [ Dsm.Batching.off; batching_policy ~policy:p ~ack_flush ~ack_rider ~release_flush ]
    in
    let protocols = if protocols = [] then None else Some protocols in
    let outcomes = Experiments.Batching.sweep ~spec ~faults ?protocols ~policies () in
    Format.printf "workload: %a@.@." Workload.Spec.pp spec;
    Format.printf "%a@." Experiments.Batching.pp_report outcomes;
    (match Experiments.Batching.lotec_message_reduction_pct outcomes with
    | Some pct -> Format.printf "LOTEC messages vs off: %+.1f%%@." pct
    | None -> ());
    match json with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Experiments.Batching.to_json outcomes);
        close_out oc;
        Format.printf "wrote %s@." file
  in
  let term =
    Term.(
      const action $ seed_arg $ roots_arg $ protocols_arg $ fault_drop_arg
      $ fault_duplicate_arg $ fault_jitter_arg $ fault_seed_arg $ batching_arg
      $ batch_ack_flush_arg $ batch_ack_rider_arg $ batch_release_flush_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Sweep the message-combining policy x protocols under light interconnect faults \
          and report message/byte counts, combining counters and the software-cost replay \
          grid against the batching-off baseline.")
    term

let scale_cmd =
  let roots_scale_arg =
    let doc =
      "Root transactions of a sweep point (repeatable, paired with --nodes). Default: the \
       full 100k/64 300k/128 1M/256 sweep."
    in
    Arg.(value & opt_all int [] & info [ "roots" ] ~docv:"N" ~doc)
  in
  let nodes_scale_arg =
    let doc = "Cluster size of a sweep point (repeatable, paired with --roots)." in
    Arg.(value & opt_all int [] & info [ "nodes" ] ~docv:"N" ~doc)
  in
  let protocols_arg =
    let doc = "Protocol to sweep (repeatable); default all four." in
    Arg.(value & opt_all protocol_conv [] & info [ "protocol"; "p" ] ~doc)
  in
  let engine_bench_arg =
    let doc = "Also run the pure-engine micro-benchmark against the recorded baseline." in
    Arg.(value & flag & info [ "engine-bench" ] ~doc)
  in
  let json_arg =
    let doc = "Write the results as JSON to $(docv) (BENCH_engine.json schema)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let min_eps_arg =
    let doc = "Fail (exit 1) if any sweep row dispatches fewer events/sec than $(docv)." in
    Arg.(value & opt (some float) None & info [ "assert-min-events-per-sec" ] ~docv:"EPS" ~doc)
  in
  let max_heap_arg =
    let doc = "Fail (exit 1) if the peak heap of any sweep row exceeds $(docv) MB." in
    Arg.(value & opt (some float) None & info [ "assert-max-heap-mb" ] ~docv:"MB" ~doc)
  in
  let action roots nodes protocols engine_bench json min_eps max_heap =
    let points =
      match (roots, nodes) with
      | [], [] -> Experiments.Scale.default_points
      | rs, ns when List.length rs = List.length ns -> List.combine rs ns
      | _ ->
          prerr_endline "--roots and --nodes must be given the same number of times";
          exit 2
    in
    let protocols = if protocols = [] then Dsm.Protocol.all else protocols in
    let bench =
      if engine_bench then begin
        let b = Experiments.Scale.engine_bench () in
        Format.printf "%a@." Experiments.Scale.pp_bench b;
        Some b
      end
      else None
    in
    let progress (r : Experiments.Scale.scale_row) =
      Format.printf "  %-9s %8d roots x %3d nodes: %6.2f s wall, %8.0f events/sec, peak \
                     heap %.1f MB@."
        (Format.asprintf "%a" Dsm.Protocol.pp r.Experiments.Scale.s_protocol)
        r.Experiments.Scale.s_roots r.Experiments.Scale.s_nodes
        r.Experiments.Scale.s_profile.Experiments.Scale.wall_s
        r.Experiments.Scale.s_profile.Experiments.Scale.events_per_sec
        r.Experiments.Scale.s_profile.Experiments.Scale.peak_heap_mb
    in
    let rows = Experiments.Scale.sweep ~points ~protocols ~progress () in
    Format.printf "@.%a@." Experiments.Scale.pp_sweep rows;
    (match json with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Experiments.Scale.to_json ?bench ~scale:rows ());
        close_out oc;
        Format.printf "wrote %s@." file);
    let failures = ref 0 in
    let check cond msg = if not cond then (incr failures; prerr_endline ("FAIL: " ^ msg)) in
    List.iter
      (fun (r : Experiments.Scale.scale_row) ->
        let p = r.Experiments.Scale.s_profile in
        let label =
          Format.asprintf "%a %d roots x %d nodes" Dsm.Protocol.pp
            r.Experiments.Scale.s_protocol r.Experiments.Scale.s_roots
            r.Experiments.Scale.s_nodes
        in
        Option.iter
          (fun eps ->
            check
              (p.Experiments.Scale.events_per_sec >= eps)
              (Printf.sprintf "%s: %.0f events/sec below the %.0f floor" label
                 p.Experiments.Scale.events_per_sec eps))
          min_eps;
        Option.iter
          (fun mb ->
            check
              (p.Experiments.Scale.peak_heap_mb <= mb)
              (Printf.sprintf "%s: peak heap %.1f MB above the %.1f MB bound" label
                 p.Experiments.Scale.peak_heap_mb mb))
          max_heap)
      rows;
    if !failures > 0 then exit 1
  in
  let term =
    Term.(
      const action $ roots_scale_arg $ nodes_scale_arg $ protocols_arg $ engine_bench_arg
      $ json_arg $ min_eps_arg $ max_heap_arg)
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Large-run scale sweep (streaming metrics, bounded memory): roots x nodes x \
          protocols, reporting wall clock, events/sec and peak heap; optionally the \
          pure-engine micro-benchmark against the recorded pre-refactor baseline.")
    term

let trace_cmd =
  let count_arg =
    let doc = "Number of trailing events to print." in
    Arg.(value & opt int 40 & info [ "n"; "events"; "tail" ] ~doc)
  in
  let chrome_arg =
    let doc =
      "Write the full trace as Chrome trace-event JSON to $(docv), one track per simulated \
       node (load in Perfetto or chrome://tracing)."
    in
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE" ~doc)
  in
  let txn_arg =
    let doc = "Print the timeline of transaction family $(docv) instead of the event tail." in
    Arg.(value & opt (some int) None & info [ "txn" ] ~docv:"ID" ~doc)
  in
  let capacity_arg =
    let doc = "Retain the last $(docv) protocol events." in
    Arg.(value & opt int 100_000 & info [ "trace-capacity" ] ~docv:"N" ~doc)
  in
  let action spec protocol seed roots n chrome txn capacity =
    let spec = apply_overrides spec seed roots in
    let config = { Core.Config.default with Core.Config.trace_capacity = capacity } in
    let wl =
      Workload.Generator.generate spec ~page_size:config.Core.Config.page_size
    in
    let run = Experiments.Runner.execute ~config ~protocol wl in
    let metrics = Experiments.Runner.metrics run in
    match Core.Runtime.trace run.Experiments.Runner.runtime with
    | None -> prerr_endline "tracing was not enabled"
    | Some tr ->
        Format.printf "event counts:@.";
        List.iter
          (fun (c, k) -> Format.printf "  %-14s %d@." c k)
          (Sim.Trace.counts tr ~label:Dsm.Event.category);
        Format.printf "@.%a@." Dsm.Metrics.pp_wire_breakdown metrics;
        Format.printf "@.%a@." Dsm.Metrics.pp_latencies metrics;
        Format.printf "@.";
        (match txn with
        | Some id ->
            print_string
              (Dsm.Trace_export.timeline ~family:(Txn.Txn_id.of_int id) (Sim.Trace.events tr))
        | None -> print_trace_tail tr n);
        Option.iter (write_chrome_trace ~node_count:config.Core.Config.node_count tr) chrome
  in
  let term =
    Term.(
      const action $ scenario_arg $ protocol_arg $ seed_arg $ roots_arg $ count_arg
      $ chrome_arg $ txn_arg $ capacity_arg)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a scenario with typed protocol-event tracing; print per-category counts, the \
          per-message-type wire breakdown, latency percentiles and the event tail (or one \
          family's timeline), optionally exporting Chrome trace JSON.")
    term

let main () =
  let doc = "LOTEC: nested object transactions over simulated DSM (PODC '99 reproduction)" in
  let info = Cmd.info "lotec_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; figure_cmd; figures_cmd; ratios_cmd; ablation_cmd; granularity_cmd;
            sweep_cmd; throughput_cmd; trace_cmd; chaos_cmd; partition_cmd; lease_cmd; cache_cmd; batch_cmd;
            ship_cmd; escrow_cmd; scale_cmd;
          ]))
