(* Command-line driver: run scenarios, single simulations, and the paper's
   figure experiments from the shell. See README for examples. *)

let () = Cli.main ()
