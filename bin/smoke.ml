(* Quick end-to-end exercise of the runtime: a small generated workload under
   every protocol, printing headline numbers. Not part of the documented CLI
   (see lotec_sim.ml); kept as a fast development smoke check. *)

let () =
  let spec =
    { Workload.Spec.default with Workload.Spec.object_count = 12; root_count = 40; seed = 7 }
  in
  let wl = Workload.Generator.generate spec ~page_size:4096 in
  Format.printf "workload: %a@." Workload.Spec.pp spec;
  List.iter
    (fun protocol ->
      let run = Experiments.Runner.execute ~protocol wl in
      let m = Experiments.Runner.metrics run in
      Format.printf "@.== %a ==@.%a@." Dsm.Protocol.pp protocol Dsm.Metrics.pp_summary m)
    Dsm.Protocol.all
