#!/usr/bin/env bash
# Intra-repo markdown link checker: every relative [text](target) in the
# tracked *.md files must point at an existing file, and a #fragment on a
# markdown target must match a heading in that file (GitHub slug rules,
# approximated: lowercase, punctuation stripped, spaces to dashes).
# External (scheme://) and mailto: links are out of scope. No dependencies
# beyond bash + python3.
set -euo pipefail
cd "$(dirname "$0")/.."

python3 - <<'EOF'
import os, re, sys

LINK = re.compile(r'(?<!\!)\[[^\]]*\]\(([^)\s]+)\)')

def slugs(path):
    out = set()
    in_fence = False
    with open(path, encoding='utf-8') as f:
        for line in f:
            if line.lstrip().startswith('```'):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = re.match(r'#+\s+(.*)', line)
            if m:
                text = re.sub(r'`([^`]*)`', r'\1', m.group(1)).strip()
                slug = re.sub(r'[^\w\- ]', '', text.lower()).replace(' ', '-')
                out.add(slug)
    return out

md_files = []
for root, dirs, files in os.walk('.'):
    dirs[:] = [d for d in dirs if not d.startswith(('.', '_build')) and d != 'node_modules']
    md_files += [os.path.join(root, f) for f in files if f.endswith('.md')]

errors = []
for md in sorted(md_files):
    base = os.path.dirname(md)
    in_fence = False
    with open(md, encoding='utf-8') as f:
        for lineno, line in enumerate(f, 1):
            if line.lstrip().startswith('```'):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK.findall(line):
                if re.match(r'[a-zA-Z][a-zA-Z0-9+.-]*:', target):
                    continue  # scheme: http(s), mailto, ...
                path, _, frag = target.partition('#')
                if not path:  # same-file #anchor
                    if frag and frag.lower() not in slugs(md):
                        errors.append(f"{md}:{lineno}: broken anchor #{frag}")
                    continue
                resolved = os.path.normpath(os.path.join(base, path))
                if not os.path.exists(resolved):
                    errors.append(f"{md}:{lineno}: missing target {target}")
                elif frag and resolved.endswith('.md') and frag.lower() not in slugs(resolved):
                    errors.append(f"{md}:{lineno}: broken anchor {target}")

if errors:
    print(f"{len(errors)} broken markdown link(s):")
    print('\n'.join(errors))
    sys.exit(1)
print(f"markdown links OK across {len(md_files)} file(s)")
EOF
