(* Network parameter sweep: where does LOTEC make sense? (paper §5,
   Figures 6-8.)

   LOTEC sends the fewest bytes but the most (small) messages, so its
   advantage depends on the per-message software cost relative to bandwidth.
   This example runs one contended workload, then replays each protocol's
   message ledger across a (bandwidth x software-cost) grid and reports the
   winner in each cell — reproducing the paper's conclusion that LOTEC is
   comfortable on 10/100 Mbps networks but needs aggressive low-latency
   messaging at gigabit speeds.

   Run with: dune exec examples/network_sweep.exe *)

let bandwidths = [ (1e7, "10M"); (1e8, "100M"); (1e9, "1G") ]
let software_costs = [ 100.0; 20.0; 5.0; 1.0; 0.5 ]

let () =
  let spec = Workload.Scenarios.spec ~root_count:120 Workload.Scenarios.High Workload.Scenarios.Medium in
  let wl = Workload.Generator.generate spec ~page_size:4096 in
  let protocols = [ Dsm.Protocol.Cotec; Dsm.Protocol.Otec; Dsm.Protocol.Lotec ] in
  let runs = Experiments.Runner.execute_all ~protocols wl in
  Format.printf "workload: %a@.@." Workload.Spec.pp spec;
  Format.printf "total consistency time (ms) and winner per network setting:@.@.";
  Format.printf "%-6s %-8s %10s %10s %10s   %s@." "bw" "sw cost" "COTEC" "OTEC" "LOTEC" "winner";
  List.iter
    (fun (bw, bw_name) ->
      List.iter
        (fun sw ->
          let link = { Sim.Network.bandwidth_bps = bw; software_cost_us = sw } in
          let times =
            List.map
              (fun (run : Experiments.Runner.run) ->
                ( run.Experiments.Runner.protocol,
                  Dsm.Metrics.total_time_us (Experiments.Runner.metrics run) ~link ))
              runs
          in
          let winner =
            List.fold_left
              (fun (bp, bt) (p, t) -> if t < bt then (p, t) else (bp, bt))
              (List.hd times) (List.tl times)
          in
          let cell p = List.assoc p times /. 1000.0 in
          Format.printf "%-6s %-8s %10.1f %10.1f %10.1f   %a@." bw_name
            (Printf.sprintf "%gus" sw) (cell Dsm.Protocol.Cotec) (cell Dsm.Protocol.Otec)
            (cell Dsm.Protocol.Lotec) Dsm.Protocol.pp (fst winner))
        software_costs;
      Format.printf "@.")
    bandwidths;
  (* The paper's qualitative claim, checked mechanically. *)
  let lotec = List.nth runs 2 and otec = List.nth runs 1 in
  let margin bw sw =
    let link = { Sim.Network.bandwidth_bps = bw; software_cost_us = sw } in
    Dsm.Metrics.total_time_us (Experiments.Runner.metrics otec) ~link
    -. Dsm.Metrics.total_time_us (Experiments.Runner.metrics lotec) ~link
  in
  Format.printf "LOTEC's margin over OTEC shrinks as the network gets faster:@.";
  List.iter
    (fun (bw, name) -> Format.printf "  %-5s sw=20us: %+.1f ms@." name (margin bw 20.0 /. 1000.))
    bandwidths
