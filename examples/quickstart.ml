(* Quickstart: a counter object shared by four nodes under LOTEC.

   Shows the core workflow:
     1. define a class (attributes + methods in the tiny IR),
     2. compile it (fixes the layout, runs the access analysis),
     3. build a catalog of object instances,
     4. create a runtime, submit root transactions, run,
     5. inspect metrics and verify serializability.

   Run with: dune exec examples/quickstart.exe *)

open Objmodel

let () =
  (* 1. A counter with a hot field and a rarely-read log field. *)
  let counter_class =
    Obj_class.define ~name:"Counter"
      ~attrs:
        [|
          Attribute.make ~name:"value" ~size_bytes:64;
          Attribute.make ~name:"history" ~size_bytes:8000 (* spills onto later pages *);
        |]
      ~methods:
        [
          Method_ir.make ~name:"increment" ~body:[ Method_ir.Read 0; Method_ir.Write 0 ];
          Method_ir.make ~name:"read" ~body:[ Method_ir.Read 0 ];
          Method_ir.make ~name:"archive" ~body:[ Method_ir.Read 0; Method_ir.Write 1 ];
        ]
      ~ref_slots:0
  in
  (* 2. Compile: 4096-byte pages — 'value' lands on page 0, 'history' spans
     pages 0-1. The analysis records that 'increment' touches page 0 only,
     which is exactly what LOTEC will transfer. *)
  let counter_class = Obj_class.compile ~page_size:4096 counter_class in
  Format.printf "Counter spans %d pages@." (Obj_class.page_count counter_class);
  let incr_method = Obj_class.find_method counter_class "increment" in
  Format.printf "increment predicted pages: %s@."
    (String.concat ","
       (List.map string_of_int
          incr_method.Obj_class.page_summary.Access_analysis.access_pages));

  (* 3. One shared counter instance. *)
  let catalog =
    Catalog.create [ { Catalog.oid = Oid.of_int 0; cls = counter_class; refs = [||] } ]
  in

  (* 4. Four nodes hammering the counter. *)
  let config =
    { Core.Config.default with Core.Config.node_count = 4; protocol = Dsm.Protocol.Lotec }
  in
  let rt = Core.Runtime.create ~config ~catalog in
  for i = 0 to 19 do
    let meth = if i mod 5 = 4 then "archive" else "increment" in
    Core.Runtime.submit rt ~at:(float_of_int (i * 40)) ~node:(i mod 4) ~oid:(Oid.of_int 0)
      ~meth ~seed:(1000 + i)
  done;
  Core.Runtime.run rt;

  (* 5. Results. *)
  let m = Core.Runtime.metrics rt in
  Format.printf "@.%a@." Dsm.Metrics.pp_summary m;
  (match Core.Runtime.check_serializable rt with
  | Core.Serializability.Serializable order ->
      Format.printf "@.serializable; equivalent serial order of %d families@."
        (List.length order)
  | Core.Serializability.Cyclic _ -> Format.printf "@.NOT serializable (bug!)@.");
  let e = Dsm.Metrics.per_object m (Oid.of_int 0) in
  Format.printf "counter object: %d msgs, %d data bytes, %d demand fetches@."
    e.Dsm.Metrics.messages e.Dsm.Metrics.data_bytes e.Dsm.Metrics.demand_fetches
