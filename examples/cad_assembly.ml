(* Computer-aided design: the domain this work was originally developed for
   (paper §5.1, footnote 5): large structured objects whose small elements
   aggregate into coarse-grained lockable assemblies.

   An Assembly object is large (tens of pages: geometry, constraints,
   metadata); design operations touch only slices of it:
   - [move_part] rewrites a geometry slice,
   - [reroute] rewrites the constraint section,
   - [render] reads geometry only,
   - [annotate] writes the small metadata page.

   Because each method's predicted pages are a narrow slice of a big object,
   LOTEC's transfer savings over OTEC/COTEC are at their most dramatic here —
   this is the "large objects" end of the paper's Figures 3/5.

   Run with: dune exec examples/cad_assembly.exe *)

open Objmodel

(* Layout: 8 geometry chunks of ~2 pages each, a constraint section,
   one metadata page. *)
let assembly_class =
  let geometry_chunks = 8 in
  let attrs =
    Array.concat
      [
        Array.init geometry_chunks (fun i ->
            Attribute.make ~name:(Printf.sprintf "geom%d" i) ~size_bytes:8192);
        [|
          Attribute.make ~name:"constraints" ~size_bytes:12288;
          Attribute.make ~name:"metadata" ~size_bytes:1024;
        |];
      ]
  in
  let geom i = i in
  let constraints = geometry_chunks in
  let metadata = geometry_chunks + 1 in
  Obj_class.compile ~page_size:4096
    (Obj_class.define ~name:"Assembly" ~attrs
       ~methods:
         [
           Method_ir.make ~name:"move_part"
             ~body:
               [
                 Method_ir.Read (geom 2);
                 Method_ir.Write (geom 2);
                 (* Occasionally the move ripples into a neighbour chunk; the
                    compiler must predict it conservatively either way. *)
                 Method_ir.If
                   {
                     prob_then = 0.3;
                     then_ = [ Method_ir.Read (geom 3); Method_ir.Write (geom 3) ];
                     else_ = [];
                   };
                 Method_ir.Write metadata;
               ];
           Method_ir.make ~name:"reroute"
             ~body:[ Method_ir.Read constraints; Method_ir.Write constraints; Method_ir.Write metadata ];
           Method_ir.make ~name:"render"
             ~body:(List.init geometry_chunks (fun i -> Method_ir.Read (geom i)));
           Method_ir.make ~name:"annotate" ~body:[ Method_ir.Read metadata; Method_ir.Write metadata ];
         ]
       ~ref_slots:0)

let () =
  Format.printf "Assembly object: %d pages@." (Obj_class.page_count assembly_class);
  List.iter
    (fun name ->
      let m = Obj_class.find_method assembly_class name in
      Format.printf "  %-10s predicted pages: %s@." name
        (String.concat ","
           (List.map string_of_int m.Obj_class.page_summary.Access_analysis.access_pages)))
    [ "move_part"; "reroute"; "render"; "annotate" ];

  let catalog =
    Catalog.create
      (List.init 4 (fun i ->
           { Catalog.oid = Oid.of_int i; cls = assembly_class; refs = [||] }))
  in
  let submit rt =
    let rng = Sim.Prng.create ~seed:77 in
    let clock = ref 0.0 in
    for i = 0 to 79 do
      clock := !clock +. Sim.Prng.exponential rng ~mean:250.0;
      let meth =
        Sim.Prng.pick rng [| "move_part"; "move_part"; "reroute"; "render"; "annotate" |]
      in
      Core.Runtime.submit rt ~at:!clock ~node:(i mod 6) ~oid:(Oid.of_int (Sim.Prng.int rng 4))
        ~meth ~seed:(500 + i)
    done
  in
  Format.printf "@.%-8s %12s %10s %14s@." "protocol" "data bytes" "msgs" "demand fetches";
  List.iter
    (fun protocol ->
      let config = { Core.Config.default with Core.Config.node_count = 6; protocol } in
      let rt = Core.Runtime.create ~config ~catalog in
      submit rt;
      Core.Runtime.run rt;
      let m = Core.Runtime.metrics rt in
      let t = Dsm.Metrics.totals m in
      Format.printf "%-8s %12d %10d %14d@."
        (Format.asprintf "%a" Dsm.Protocol.pp protocol)
        (Dsm.Metrics.total_data_bytes m) (Dsm.Metrics.total_messages m)
        t.Dsm.Metrics.demand_fetches)
    [ Dsm.Protocol.Cotec; Dsm.Protocol.Otec; Dsm.Protocol.Lotec ];
  Format.printf
    "@.LOTEC moves only the slice each CAD operation is predicted to touch;@.\
     COTEC re-ships whole multi-page assemblies on every acquisition.@."
