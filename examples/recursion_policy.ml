(* Mutually recursive inter-object invocations (paper §3.4).

   The paper precludes them and sketches two enforcement alternatives:
   static preclusion ("verify compliance") versus admitting the programs and
   checking at run time, with per-invocation overhead proportional to
   nesting depth. Both are implemented; this example shows them side by
   side on a deliberately cyclic pair of classes:

     Ping.bounce -> (ref) Pong.bounce -> (ref) Ping.bounce -> ...

   Under the static policy the catalog is rejected outright. Under the
   run-time policy the catalog loads, non-recursive executions commit
   normally, and an execution that actually revisits an object is aborted
   permanently (no retries: the failure is deterministic), with all its
   provisional writes undone.

   Run with: dune exec examples/recursion_policy.exe *)

open Objmodel

let ping_pong_catalog () =
  let cls name =
    Obj_class.compile ~page_size:4096
      (Obj_class.define ~name
         ~attrs:[| Attribute.make ~name:"state" ~size_bytes:128 |]
         ~methods:
           [
             Method_ir.make ~name:"bounce"
               ~body:[ Method_ir.Write 0; Method_ir.Invoke { slot = 0; meth = "bounce" } ];
             Method_ir.make ~name:"poke" ~body:[ Method_ir.Write 0 ];
             Method_ir.make ~name:"relay"
               ~body:[ Method_ir.Read 0; Method_ir.Invoke { slot = 0; meth = "poke" } ];
           ]
         ~ref_slots:1)
  in
  Catalog.create
    [
      { Catalog.oid = Oid.of_int 0; cls = cls "Ping"; refs = [| Oid.of_int 1 |] };
      { Catalog.oid = Oid.of_int 1; cls = cls "Pong"; refs = [| Oid.of_int 0 |] };
    ]

let () =
  let catalog = ping_pong_catalog () in
  (match Catalog.validate_acyclic catalog with
  | Ok () -> assert false
  | Error cycle ->
      Format.printf "reference cycle: %s@."
        (String.concat " -> " (List.map (Format.asprintf "%a" Oid.pp) cycle)));

  Format.printf "@.-- static policy (default) --@.";
  (try ignore (Core.Runtime.create ~config:Core.Config.default ~catalog)
   with Invalid_argument msg -> Format.printf "rejected at creation: %s@." msg);

  Format.printf "@.-- run-time policy (allow_recursive_catalogs) --@.";
  let config =
    {
      Core.Config.default with
      Core.Config.allow_recursive_catalogs = true;
      trace_capacity = 1000;
      node_count = 2;
    }
  in
  let rt = Core.Runtime.create ~config ~catalog in
  (* relay only goes one hop: legal despite the cyclic catalog. *)
  Core.Runtime.submit rt ~at:0.0 ~node:0 ~oid:(Oid.of_int 0) ~meth:"relay" ~seed:1;
  (* bounce recurses Ping -> Pong -> Ping: rejected at run time. *)
  Core.Runtime.submit rt ~at:1_000.0 ~node:1 ~oid:(Oid.of_int 0) ~meth:"bounce" ~seed:2;
  Core.Runtime.run rt;
  List.iter
    (fun (r : Core.Runtime.root_result) ->
      Format.printf "%s on %a: %s after %d attempt(s)@." r.Core.Runtime.meth Oid.pp
        r.Core.Runtime.oid
        (match r.Core.Runtime.outcome with
        | Core.Runtime.Committed -> "committed"
        | Core.Runtime.Gave_up -> "rejected")
        r.Core.Runtime.attempts)
    (Core.Runtime.results rt);
  (match Core.Runtime.trace rt with
  | Some tr ->
      Format.printf "@.trace tail:@.";
      List.iter
        (fun e -> Format.printf "%a@." (Sim.Trace.pp_entry Dsm.Event.pp) e)
        (Sim.Trace.latest tr 6)
  | None -> ());
  (* The rejected family's writes were rolled back: Ping (which only bounce
     wrote) is back at version 0; Pong carries relay's committed poke. *)
  let versions_of o =
    let _, versions = Gdo.Directory.page_map (Core.Runtime.directory rt) (Oid.of_int o) in
    String.concat "," (Array.to_list (Array.map string_of_int versions))
  in
  Format.printf "@.Ping page versions: %s (bounce's write undone)@." (versions_of 0);
  Format.printf "Pong page versions: %s (relay's poke committed)@." (versions_of 1)
