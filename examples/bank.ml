(* Banking: nested object transactions in the paper's motivating domain —
   transaction processing, where throughput comes from volume, not from
   single-transaction complexity (paper §2).

   A Bank owns Branches; a Branch owns Accounts. A money transfer is a root
   transaction on a branch that invokes withdraw and deposit
   sub-transactions on two accounts — a three-level closed nested family.
   Some transfers fail at the sub-transaction level (insufficient funds,
   modelled by injected aborts) and retry or roll back without touching the
   rest of the system.

   Compares all four protocols on the same deterministic workload.

   Run with: dune exec examples/bank.exe *)

open Objmodel

let account_class =
  Obj_class.compile ~page_size:4096
    (Obj_class.define ~name:"Account"
       ~attrs:
         [|
           Attribute.make ~name:"balance" ~size_bytes:64;
           Attribute.make ~name:"owner" ~size_bytes:512;
           (* The statement ledger spans several later pages; movements
              append to it, but a balance check never reads it — the slice
              LOTEC can decline to transfer. *)
           Attribute.make ~name:"statement" ~size_bytes:14000;
         |]
       ~methods:
         [
           Method_ir.make ~name:"withdraw"
             ~body:[ Method_ir.Read 0; Method_ir.Write 0; Method_ir.Write 2 ];
           Method_ir.make ~name:"deposit"
             ~body:[ Method_ir.Read 0; Method_ir.Write 0; Method_ir.Write 2 ];
           Method_ir.make ~name:"balance" ~body:[ Method_ir.Read 0 ];
           Method_ir.make ~name:"statement"
             ~body:[ Method_ir.Read 0; Method_ir.Read 1; Method_ir.Read 2 ];
         ]
       ~ref_slots:0)

(* A branch holds two "featured" account references used by this workload's
   transfers; its own attribute tracks transfer volume. *)
let branch_class =
  Obj_class.compile ~page_size:4096
    (Obj_class.define ~name:"Branch"
       ~attrs:[| Attribute.make ~name:"volume" ~size_bytes:64 |]
       ~methods:
         [
           Method_ir.make ~name:"transfer"
             ~body:
               [
                 Method_ir.Invoke { slot = 0; meth = "withdraw" };
                 Method_ir.Invoke { slot = 1; meth = "deposit" };
                 Method_ir.Read 0;
                 Method_ir.Write 0;
               ];
           Method_ir.make ~name:"audit"
             ~body:
               [
                 Method_ir.Invoke { slot = 0; meth = "statement" };
                 Method_ir.Invoke { slot = 1; meth = "statement" };
                 Method_ir.Read 0;
               ];
           Method_ir.make ~name:"verify"
             ~body:
               [
                 Method_ir.Invoke { slot = 0; meth = "balance" };
                 Method_ir.Invoke { slot = 1; meth = "balance" };
                 Method_ir.Read 0;
               ];
         ]
       ~ref_slots:2)

let build_catalog ~branches ~accounts_per_branch =
  let oid = Oid.of_int in
  let accounts_start = branches in
  let instances =
    List.init branches (fun b ->
        let a0 = accounts_start + (b * accounts_per_branch) in
        {
          Catalog.oid = oid b;
          cls = branch_class;
          refs = [| oid a0; oid (a0 + 1) |];
        })
    @ List.init (branches * accounts_per_branch) (fun a ->
          { Catalog.oid = oid (accounts_start + a); cls = account_class; refs = [||] })
  in
  Catalog.create instances

let () =
  let branches = 6 and accounts_per_branch = 4 in
  let catalog = build_catalog ~branches ~accounts_per_branch in
  Format.printf "bank: %d branches, %d accounts, %d total pages@." branches
    (branches * accounts_per_branch)
    (Catalog.total_pages catalog);
  let submit rt =
    let rng = Sim.Prng.create ~seed:2024 in
    let clock = ref 0.0 in
    for i = 0 to 119 do
      clock := !clock +. Sim.Prng.exponential rng ~mean:120.0;
      let branch = Sim.Prng.int rng branches in
      let meth =
        let u = Sim.Prng.float rng 1.0 in
        if u < 0.15 then "audit" else if u < 0.45 then "verify" else "transfer"
      in
      Core.Runtime.submit rt ~at:!clock ~node:(i mod 4) ~oid:(Oid.of_int branch) ~meth
        ~seed:(3000 + i)
    done
  in
  Format.printf "@.%-10s %12s %8s %12s %10s %8s@." "protocol" "bytes" "msgs" "completion"
    "commits" "aborts";
  List.iter
    (fun protocol ->
      let config =
        {
          Core.Config.default with
          Core.Config.node_count = 4;
          protocol;
          (* ~4% of withdraw/deposit sub-transactions fail and retry. *)
          abort_probability = 0.04;
        }
      in
      let rt = Core.Runtime.create ~config ~catalog in
      submit rt;
      Core.Runtime.run rt;
      (match Core.Runtime.check_serializable rt with
      | Core.Serializability.Serializable _ -> ()
      | Core.Serializability.Cyclic _ -> failwith "history not serializable");
      let m = Core.Runtime.metrics rt in
      let t = Dsm.Metrics.totals m in
      Format.printf "%-10s %12d %8d %12.0f %10d %8d@."
        (Format.asprintf "%a" Dsm.Protocol.pp protocol)
        (Dsm.Metrics.total_bytes m) (Dsm.Metrics.total_messages m)
        (Dsm.Metrics.completion_time_us m) t.Dsm.Metrics.roots_committed
        t.Dsm.Metrics.sub_aborts)
    Dsm.Protocol.all;
  Format.printf "@.(sub-transaction aborts are injected failures that undo locally and retry)@."
